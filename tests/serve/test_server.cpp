#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <csignal>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>

#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "service/signals.hpp"

namespace essns::serve {
namespace {

/// Small-but-real server fixture: 16x16 fires, 3 truth steps, tiny search
/// budget, one job slot.
ServeConfig tiny_server_config() {
  ServeConfig config;
  config.port = 0;  // ephemeral
  config.job_slots = 1;
  config.total_workers = 1;
  config.queue_capacity = 8;
  config.default_fire.size = 16;
  config.default_fire.steps = 3;
  config.default_spec.generations = 3;
  config.default_spec.population = 8;
  config.default_spec.offspring = 8;
  return config;
}

/// The spec a tiny server stamps on its jobs, as the ORACLE runs it: same
/// search knobs, cache off — results are bit-identical under every cache
/// policy, so the oracle needs no cache at all.
service::JobSpec oracle_spec(const ServeConfig& config) {
  service::JobSpec spec = config.default_spec;
  spec.cache_policy = cache::CachePolicy::kOff;
  return spec;
}

/// Deterministic prefix of a prediction response (timing fields follow).
std::string deterministic_prefix(const std::string& line) {
  return line.substr(0, line.find(" seconds="));
}

/// run() on a background thread; joins on destruction.
class ServerRunner {
 public:
  explicit ServerRunner(Server& server)
      : server_(server), thread_([this] { rc_ = server_.run(); }) {}
  ~ServerRunner() {
    if (thread_.joinable()) {
      server_.stop();
      thread_.join();
    }
  }
  int join() {
    thread_.join();
    return rc_;
  }

 private:
  Server& server_;
  int rc_ = -1;
  std::thread thread_;
};

TEST(ServeServer, PredictMatchesInProcessOracleAndTracksTheFire) {
  const ServeConfig config = tiny_server_config();
  Server server(tiny_server_config());
  server.start();
  ServerRunner runner(server);
  LineClient client("127.0.0.1", server.port());

  EXPECT_EQ(client.request("ping"), "ok pong");

  const std::string response = client.request("predict id=f1");
  ASSERT_EQ(response.rfind("ok id=f1 ", 0), 0u) << response;

  // The oracle recomputes the response from the request parameters alone:
  // pure function of (server seed, defaults, overrides), no server state.
  const synth::Workload workload = synth::make_workload(config.default_fire);
  const service::JobRecord oracle = service::run_prediction_job(
      workload, 0, config.seed, 1, oracle_spec(config), simd::Mode::kAuto,
      parallel::NumaMode::kAuto, firelib::SweepBackend::kScalar, nullptr);
  EXPECT_EQ(deterministic_prefix(response),
            format_job_response("f1", Verb::kPredict, oracle));

  // Re-prediction at a longer horizon: same fire, same seed, new steps.
  const std::string repredict = client.request("repredict id=f1 steps=4");
  ASSERT_EQ(repredict.rfind("ok id=f1 ", 0), 0u) << repredict;
  synth::WorkloadRequest extended = config.default_fire;
  extended.steps = 4;
  const service::JobRecord extended_oracle = service::run_prediction_job(
      synth::make_workload(extended), 0, config.seed, 1, oracle_spec(config),
      simd::Mode::kAuto, parallel::NumaMode::kAuto,
      firelib::SweepBackend::kScalar, nullptr);
  EXPECT_EQ(deterministic_prefix(repredict),
            format_job_response("f1", Verb::kRepredict, extended_oracle));

  // The shared-prefix ground truth makes the re-prediction run warm.
  const std::string stats = client.request("stats");
  EXPECT_NE(stats.find("tracked_fires=1"), std::string::npos) << stats;
  EXPECT_EQ(stats.find("cache_hits=0 "), std::string::npos)
      << "re-prediction must hit the warm cache: " << stats;

  const std::string metrics = client.request("metrics");
  ASSERT_EQ(metrics.rfind("ok {", 0), 0u) << metrics;
  EXPECT_EQ(metrics.find('\n'), std::string::npos)
      << "metrics scrape must be a single line";
  EXPECT_NE(metrics.find("serve.requests"), std::string::npos) << metrics;
  EXPECT_NE(metrics.find("serve.predict_seconds"), std::string::npos)
      << metrics;

  EXPECT_EQ(client.request("shutdown"), "ok draining");
  EXPECT_EQ(runner.join(), 0);
}

TEST(ServeServer, TrackingAndParseErrorsAnswerErrLines) {
  Server server(tiny_server_config());
  server.start();
  ServerRunner runner(server);
  LineClient client("127.0.0.1", server.port());

  EXPECT_EQ(client.request("repredict id=ghost"),
            "err id=ghost is not tracked (predict it first)");
  ASSERT_EQ(client.request("predict id=f1").rfind("ok ", 0), 0u);
  EXPECT_EQ(client.request("predict id=f1"),
            "err id=f1 already tracked (use repredict)");
  EXPECT_EQ(client.request("launch id=f1").rfind("err bad request: ", 0), 0u);
  EXPECT_EQ(client.request("predict id=f2 size=8")
                .rfind("err bad request: ", 0),
            0u);
  // A structurally valid request whose parameters fail validation deeper
  // down (noise must stay below 1) answers err, not a dropped connection.
  EXPECT_EQ(client.request("predict id=f3 noise=2.0").rfind("err id=f3 ", 0),
            0u);
}

TEST(ServeServer, FullQueueRejectsInsteadOfBlocking) {
  ServeConfig config = tiny_server_config();
  config.queue_capacity = 1;
  Server server(std::move(config));
  server.start();
  ServerRunner runner(server);
  LineClient client("127.0.0.1", server.port());

  // Deterministically hold the single slot busy via the engine's test hook.
  std::mutex mutex;
  std::condition_variable cv;
  bool open = false;
  service::JobRequest blocker;
  blocker.workload = std::make_shared<synth::Workload>(
      synth::make_workload(tiny_server_config().default_fire));
  blocker.spec = tiny_server_config().default_spec;
  blocker.debug_before_run = [&] {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return open; });
  };
  auto held = server.engine().submit(std::move(blocker));
  ASSERT_EQ(held.admission, service::Admission::kAccepted);
  while (server.engine().in_flight() == 0) std::this_thread::yield();

  // First request fills the queue's single pending slot; the second is
  // answered with a reject line instead of blocking the connection.
  client.send_line("predict id=q1 seed=101");
  client.send_line("predict id=q2 seed=102");
  const std::string rejected = client.read_line();
  EXPECT_EQ(rejected,
            "err id=q2 rejected: queue full (capacity 1)");

  {
    const std::lock_guard<std::mutex> lock(mutex);
    open = true;
  }
  cv.notify_all();
  EXPECT_EQ(client.read_line().rfind("ok id=q1 ", 0), 0u);
  held.record.get();
}

TEST(ServeServer, CacheSurvivesRestartAndServesWarm) {
  const std::string snapshot = "serve_test_cache.bin";
  std::remove(snapshot.c_str());

  std::string cold_response;
  {
    ServeConfig config = tiny_server_config();
    config.cache_save = snapshot;
    Server server(std::move(config));
    server.start();
    ServerRunner runner(server);
    LineClient client("127.0.0.1", server.port());
    cold_response = client.request("predict id=f1");
    ASSERT_EQ(cold_response.rfind("ok ", 0), 0u) << cold_response;
    EXPECT_EQ(client.request("shutdown"), "ok draining");
    EXPECT_EQ(runner.join(), 0);
  }

  {
    ServeConfig config = tiny_server_config();
    config.cache_load = snapshot;
    Server server(std::move(config));
    server.start();
    EXPECT_GT(server.restored_entries(), 0u);
    ServerRunner runner(server);
    LineClient client("127.0.0.1", server.port());

    const std::string warm_response = client.request("predict id=f1");
    EXPECT_EQ(deterministic_prefix(warm_response),
              deterministic_prefix(cold_response))
        << "a restored cache must not change a single result byte";
    EXPECT_NE(warm_response.find("cache_misses=0"), std::string::npos)
        << "the warm restart must serve the identical fire from the "
           "snapshot: "
        << warm_response;
    EXPECT_EQ(client.request("shutdown"), "ok draining");
    EXPECT_EQ(runner.join(), 0);
  }
  std::remove(snapshot.c_str());
}

TEST(ServeServer, SignalDrainStopsTheServerCleanly) {
  service::ScopedSignalDrain handler;
  service::reset_drain();

  Server server(tiny_server_config());
  server.start();
  ServerRunner runner(server);
  LineClient client("127.0.0.1", server.port());
  ASSERT_EQ(client.request("predict id=f1").rfind("ok ", 0), 0u);

  std::raise(SIGINT);
  EXPECT_EQ(runner.join(), 0);
  EXPECT_TRUE(service::drain_requested());
  service::reset_drain();
}

TEST(ServeServer, DrainRequestedBeforeRunExitsImmediately) {
  service::ScopedSignalDrain handler;
  service::reset_drain();

  Server server(tiny_server_config());
  server.start();

  // Request the drain BEFORE run() starts: the loop enters draining mode on
  // its first pass and must both answer queued clients and exit.
  service::request_drain();
  ServerRunner runner(server);
  EXPECT_EQ(runner.join(), 0);
  service::reset_drain();
}

}  // namespace
}  // namespace essns::serve
