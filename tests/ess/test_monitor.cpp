#include "ess/monitor.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "synth/workloads.hpp"

namespace essns::ess {
namespace {

class EssimSystemTest : public ::testing::Test {
 protected:
  EssimSystemTest() : workload_(synth::make_plains(32)) {
    Rng rng(7);
    truth_ = synth::generate_ground_truth(workload_.environment,
                                          workload_.truth_config, rng);
    config_.islands = 3;
    config_.ga.population_size = 8;
    config_.ga.offspring_count = 8;
    config_.ga.elite_count = 1;
    config_.stop = {6, 0.95};
  }

  synth::Workload workload_;
  synth::GroundTruth truth_;
  EssimConfig config_;
};

TEST_F(EssimSystemTest, ReportsEveryIslandEveryStep) {
  EssimSystem system(workload_.environment, truth_, config_);
  Rng rng(1);
  const EssimResult result = system.run(rng);
  EXPECT_EQ(result.steps.size(), 4u);  // t2..t5
  for (const auto& step : result.steps) {
    EXPECT_EQ(step.islands.size(), 3u);
    EXPECT_GE(step.selected_island, 0);
    EXPECT_LT(step.selected_island, 3);
    for (const auto& island : step.islands) {
      EXPECT_GE(island.fitness, 0.0);
      EXPECT_LE(island.fitness, 1.0);
      EXPECT_GT(island.kign, 0.0);
      EXPECT_LE(island.kign, 1.0);
    }
  }
}

TEST_F(EssimSystemTest, MonitorSelectsBestCalibratedIsland) {
  EssimSystem system(workload_.environment, truth_, config_);
  Rng rng(2);
  const EssimResult result = system.run(rng);
  for (const auto& step : result.steps) {
    const auto& chosen =
        step.islands[static_cast<std::size_t>(step.selected_island)];
    for (const auto& island : step.islands)
      EXPECT_GE(chosen.fitness, island.fitness);
    EXPECT_DOUBLE_EQ(step.kign, chosen.kign);
  }
}

TEST_F(EssimSystemTest, QualityReasonableOnPlains) {
  EssimSystem system(workload_.environment, truth_, config_);
  Rng rng(3);
  const EssimResult result = system.run(rng);
  EXPECT_GT(result.mean_quality(), 0.3);
  for (const auto& step : result.steps) {
    EXPECT_GE(step.prediction_quality, 0.0);
    EXPECT_LE(step.prediction_quality, 1.0);
  }
}

TEST_F(EssimSystemTest, DeterministicForSameSeed) {
  EssimSystem s1(workload_.environment, truth_, config_);
  EssimSystem s2(workload_.environment, truth_, config_);
  Rng a(11), b(11);
  const auto r1 = s1.run(a);
  const auto r2 = s2.run(b);
  ASSERT_EQ(r1.steps.size(), r2.steps.size());
  for (std::size_t i = 0; i < r1.steps.size(); ++i) {
    EXPECT_EQ(r1.steps[i].selected_island, r2.steps[i].selected_island);
    EXPECT_DOUBLE_EQ(r1.steps[i].prediction_quality,
                     r2.steps[i].prediction_quality);
  }
}

TEST_F(EssimSystemTest, DeIslandsRun) {
  EssimConfig de_config = config_;
  de_config.inner = IslandOptimizer::Inner::kDe;
  de_config.de.population_size = 8;
  de_config.de_tuning = true;
  EssimSystem system(workload_.environment, truth_, de_config);
  Rng rng(4);
  const auto result = system.run(rng);
  EXPECT_EQ(result.steps.size(), 4u);
}

TEST_F(EssimSystemTest, SingleIslandDegeneratesGracefully) {
  EssimConfig one = config_;
  one.islands = 1;
  EssimSystem system(workload_.environment, truth_, one);
  Rng rng(5);
  const auto result = system.run(rng);
  for (const auto& step : result.steps) {
    EXPECT_EQ(step.selected_island, 0);
    EXPECT_EQ(step.islands.size(), 1u);
  }
}

TEST_F(EssimSystemTest, RejectsBadConfig) {
  EssimConfig bad = config_;
  bad.islands = 0;
  EXPECT_THROW(EssimSystem(workload_.environment, truth_, bad),
               InvalidArgument);

  synth::GroundTruthConfig short_cfg = workload_.truth_config;
  short_cfg.steps = 1;
  Rng rng(6);
  const auto short_truth =
      synth::generate_ground_truth(workload_.environment, short_cfg, rng);
  EXPECT_THROW(EssimSystem(workload_.environment, short_truth, config_),
               InvalidArgument);
}

}  // namespace
}  // namespace essns::ess
