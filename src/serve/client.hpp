// LineClient: a deliberately dumb blocking client for the serve protocol —
// connect, send a line, read a line. It exists so the serve tests, the load
// generator in bench_serve and `essns_cli serve --request` all talk to the
// server through the same few dozen lines instead of three ad-hoc socket
// loops.
#pragma once

#include <string>

namespace essns::serve {

class LineClient {
 public:
  /// Connect to host:port. Throws IoError on failure. `timeout_seconds`
  /// bounds every subsequent read (a hung server fails the caller instead
  /// of wedging it).
  LineClient(const std::string& host, int port, double timeout_seconds = 60.0);
  ~LineClient();

  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;

  /// Send one request line (LF appended). Throws IoError on a broken pipe.
  void send_line(const std::string& line);

  /// Block until one full response line arrives (LF stripped). Throws
  /// IoError on timeout or EOF. Lines may arrive out of request order when
  /// requests are pipelined — match on the id=<name> token.
  std::string read_line();

  /// send_line + read_line — the common lockstep call.
  std::string request(const std::string& line);

 private:
  int fd_ = -1;
  std::string buffer_;
};

}  // namespace essns::serve
