// EXP-K — Key Ignition Value calibration (the S_Kign block of Fig. 1 and the
// CS box of Fig. 2): sensitivity of prediction quality to the probability
// threshold, and the cost/result of the CS grid search.
//
// Expected shape: quality as a function of Kign rises to an interior optimum
// and falls off toward both K->0 (everything predicted burned) and K->1
// (nothing predicted) — the reason a per-step calibration search exists.
#include <cstdio>

#include "common/table.hpp"
#include "ess/calibration.hpp"
#include "ess/evaluator.hpp"
#include "ess/fitness.hpp"
#include "ess/statistical.hpp"
#include "synth/workloads.hpp"

int main() {
  using namespace essns;

  synth::Workload workload = synth::make_plains(48);
  Rng truth_rng(17);
  const synth::GroundTruth truth = synth::generate_ground_truth(
      workload.environment, workload.truth_config, truth_rng);

  // Solution set: a mix of near-truth and random scenarios, as a real OS
  // would return.
  const auto& space = firelib::ScenarioSpace::table1();
  ess::ScenarioEvaluator evaluator(workload.environment);
  evaluator.set_step({&truth.fire_lines[0], &truth.fire_lines[1], 0.0,
                      truth.step_minutes});

  Rng rng(19);
  std::vector<firelib::Scenario> scenarios;
  for (int i = 0; i < 8; ++i) {
    // Noisy copies of the hidden scenario.
    auto genome = space.encode(truth.scenario_at[1]);
    for (double& g : genome) g += rng.normal(0.0, 0.05);
    scenarios.push_back(space.decode(genome));
  }
  for (int i = 0; i < 8; ++i) scenarios.push_back(space.sample(rng));

  std::vector<firelib::IgnitionMap> maps;
  for (const auto& s : scenarios)
    maps.push_back(
        evaluator.simulate(s, truth.fire_lines[0], truth.step_minutes));
  const Grid<double> probability =
      ess::aggregate_probability(maps, truth.step_minutes);

  const auto real = firelib::burned_mask(truth.fire_lines[1],
                                         truth.step_minutes);
  const auto preburned = firelib::burned_mask(truth.fire_lines[0], 0.0);

  TextTable curve("EXP-K quality vs Kign (16-scenario ensemble, plains step 1)");
  curve.set_header({"Kign", "fitness (Eq. 3)", "predicted burned cells"});
  for (int i = 1; i <= 20; ++i) {
    const double k = i / 20.0;
    const auto predicted = ess::apply_kign(probability, k);
    const double fit = ess::jaccard(real, predicted, preburned);
    curve.add_row({TextTable::num(k, 2), TextTable::num(fit),
                   TextTable::integer(static_cast<long long>(predicted.count_if(
                       [](std::uint8_t v) { return v != 0; })))});
  }
  curve.print();

  const ess::KignSearchResult search =
      ess::search_kign(probability, real, preburned, 100);
  std::printf(
      "\nS_Kign grid search (100 candidates): Kign=%.2f fitness=%.3f "
      "(%d thresholds evaluated)\n",
      search.kign, search.fitness, search.evaluated);
  return 0;
}
