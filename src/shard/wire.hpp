// Versioned binary wire format for sharded campaigns (src/shard/runner.hpp)
// — and the seam a future prediction server / multi-host distribution layer
// plugs into: the frames that cross a pipe today can cross a socket
// unchanged tomorrow.
//
// Stream layout (little-endian throughout, common/binary_io.hpp):
//
//   u32 magic      0x45535357 ("WSSE" on the wire)
//   u32 version    kWireVersion; a reader that sees any other value rejects
//                  the whole stream (no best-effort cross-version decoding)
//   frame*         until kEnd
//
// Frame:
//   u32 type       FrameType
//   u64 length     payload bytes (bounded by kMaxFramePayload so a flipped
//                  length bit fails fast instead of waiting for 2^63 bytes)
//   ...  payload
//   u32 crc32      CRC-32 of the payload bytes
//
// The parent sends one kConfig frame to each worker's stdin; workers stream
// one kJobRecord frame per finished job (in completion order — the parent
// merges by global index), then one kShardSummary, then kEnd. A stream that
// ends without kEnd is a crashed shard: every frame before the break is
// still usable because each is independently length-prefixed and
// CRC-checked.
//
// Values round-trip bit for bit: doubles travel as IEEE-754 bit patterns,
// grids as raw row-major cell slabs. Decoders validate every length and
// enum before allocating and throw WireError on anything malformed —
// truncation, bit flips (CRC), unknown frame types, oversized dimensions —
// never UB.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/binary_io.hpp"
#include "obs/metrics.hpp"
#include "service/campaign.hpp"

namespace essns::shard {

inline constexpr std::uint32_t kWireMagic = 0x45535357u;   // "WSSE" in LE bytes
inline constexpr std::uint32_t kWireVersion = 2;
/// Upper bound on one frame's payload. Generous (a 4k x 4k double grid is
/// 128 MiB) but small enough that a corrupted length prefix is rejected
/// immediately.
inline constexpr std::uint64_t kMaxFramePayload = std::uint64_t{1} << 30;

enum class FrameType : std::uint32_t {
  kConfig = 1,        ///< parent -> worker: WorkerConfig
  kJobRecord = 2,     ///< worker -> parent: one finished JobRecord
  kShardSummary = 3,  ///< worker -> parent: wall/busy time, cache, metrics
  kEnd = 4,           ///< clean end of stream (empty payload)
};

/// Everything a --shard-worker process needs to run its slice: the catalog
/// spec text (workers re-expand it deterministically and take indices
/// shard_index, shard_index + shard_count, ...), the campaign knobs, and
/// the globally-computed workers_per_job so every job reports the same
/// worker count the single-process split would have.
struct WorkerConfig {
  std::uint32_t shard_index = 0;
  std::uint32_t shard_count = 1;
  std::string catalog_text;

  std::string method = "ess-ns";
  std::uint64_t seed = 2022;
  std::int32_t generations = 15;
  double fitness_threshold = 0.95;
  std::uint64_t population = 16;
  std::uint64_t offspring = 16;
  std::int32_t novelty_k = 10;
  std::int32_t islands = 3;
  std::uint64_t max_solution_maps = 64;
  cache::CachePolicy cache_policy = cache::CachePolicy::kStep;
  std::uint64_t cache_mem_bytes = 0;
  simd::Mode simd_mode = simd::Mode::kAuto;
  parallel::NumaMode numa_mode = parallel::NumaMode::kAuto;
  firelib::SweepBackend backend = firelib::SweepBackend::kScalar;
  std::uint32_t job_concurrency = 1;   ///< this worker's slice concurrency
  std::uint32_t workers_per_job = 1;   ///< forced, campaign-global value
  bool keep_final_maps = false;        ///< stream final grids in job frames
  bool collect_metrics = false;        ///< snapshot the worker's registry
  std::string trace_out;  ///< "" = off; worker writes <path>.shard<k>

  /// Test hook for the killed-shard arms: when >= 0, the worker calls
  /// _exit(kCrashExitCode) after streaming this many job frames.
  std::int32_t debug_crash_after_jobs = -1;
};

/// Exit code of the debug_crash_after_jobs hook, distinguishable from exec
/// failure (127) and real signals in the shard report.
inline constexpr int kCrashExitCode = 42;

/// End-of-slice facts one worker reports: its own wall clock, the summed
/// job time (utilization = busy / (wall * job_concurrency)), the slice's
/// shared-cache stats (kShared only) and the metrics scrape.
struct ShardSummary {
  std::uint32_t shard_index = 0;
  std::uint64_t jobs_run = 0;
  double wall_seconds = 0.0;
  double busy_seconds = 0.0;  ///< sum of per-job elapsed_seconds
  cache::CacheStats shared_cache_stats;
  obs::MetricsSnapshot metrics;
};

// --- payload encoders/decoders (payload bytes only, no frame header) ---
// Decoders take a BinaryReader positioned at the payload start and must
// consume it exactly; trailing bytes are a format error.

std::vector<std::uint8_t> encode_worker_config(const WorkerConfig& config);
WorkerConfig decode_worker_config(BinaryReader& in);

std::vector<std::uint8_t> encode_job_record(const service::JobRecord& record);
service::JobRecord decode_job_record(BinaryReader& in);

std::vector<std::uint8_t> encode_shard_summary(const ShardSummary& summary);
ShardSummary decode_shard_summary(BinaryReader& in);

std::vector<std::uint8_t> encode_metrics_snapshot(
    const obs::MetricsSnapshot& snapshot);
obs::MetricsSnapshot decode_metrics_snapshot(BinaryReader& in);

// --- framing ---

/// Append the 8-byte stream header (magic + version).
void append_stream_header(std::vector<std::uint8_t>& out);

/// Append one frame: type, length, payload, CRC-32(payload).
void append_frame(std::vector<std::uint8_t>& out, FrameType type,
                  const std::vector<std::uint8_t>& payload);

/// One decoded frame: the type plus its verified payload.
struct Frame {
  FrameType type = FrameType::kEnd;
  std::vector<std::uint8_t> payload;
};

/// Incremental frame decoder for a byte stream arriving in arbitrary
/// chunks (pipe reads). feed() appends bytes; next() returns the next
/// complete, CRC-verified frame or nullopt when more bytes are needed.
/// Throws WireError on a bad magic/version, an unknown frame type, an
/// oversized length, or a CRC mismatch — after which the stream is dead
/// (no resynchronization; the transport below is reliable, so corruption
/// means a broken writer, not line noise).
class FrameDecoder {
 public:
  void feed(const std::uint8_t* data, std::size_t size);

  std::optional<Frame> next();

  /// A clean kEnd frame was decoded; EOF before this means the peer died
  /// mid-stream.
  bool finished() const { return finished_; }
  /// Bytes fed but not yet consumed by a complete frame. Nonzero at EOF
  /// means a truncated trailing frame.
  std::size_t pending_bytes() const { return buffer_.size() - consumed_; }

 private:
  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;  ///< prefix of buffer_ already decoded
  bool header_seen_ = false;
  bool finished_ = false;
};

}  // namespace essns::shard
