// EXP-B6 — sweep benchmark: queue discipline (binary heap vs bucketed dial)
// and relax kernel (scalar oracle vs AVX2) in the FirePropagator Dijkstra
// sweep, single threaded, on the grid shapes that exercise both fast paths:
//
//   uniform   plains (travel-time-table inner loop, scenario-uniform fuels);
//   dem       hills (per-cell behavior field + fuel mosaic).
//
// Every timed pair is first checked for bit-identical ignition maps —
// heap-vs-dial AND scalar-vs-simd — and the whole default campaign catalog
// is swept both ways as well; any divergence makes the binary exit nonzero,
// which is how CI enforces the zero-divergence acceptance criterion.
//
// A third arm times the batched sweep backend (firelib::BatchSweep) against
// the per-scenario scalar loop at batch sizes 8 and 64 on uniform terrain —
// the regime the backend targets — with the same per-scenario divergence
// check folded into the exit code.
//
// Flags:
//   --quick        smaller grids/rounds (CI Debug job)
//   --simd MODE    auto | avx2 | scalar — the kernel for the simd arms
//                  (default auto). Forcing avx2 on a host without it skips
//                  the run with a notice (exit 0, "skipped": true in JSON)
//                  instead of silently benchmarking scalar-vs-scalar.
//   --out PATH     JSON output path (default BENCH_sweep.json)
//
// The JSON carries hardware provenance (cores, NUMA nodes, detected ISA)
// and the active settings, so numbers are never compared across hosts
// blind. Plain main on purpose (no Google Benchmark) so the target always
// builds.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "common/rng.hpp"
#include "common/simd.hpp"
#include "common/stopwatch.hpp"
#include "firelib/batch_sweep.hpp"
#include "firelib/propagator.hpp"
#include "synth/catalog.hpp"
#include "synth/ground_truth.hpp"
#include "synth/workloads.hpp"

namespace {

using namespace essns;

struct GridResult {
  std::string name;
  int rows = 0;
  int cols = 0;
  double heap_seconds = 0.0;    // dial-arm kernel, heap queue
  double dial_seconds = 0.0;    // dial-arm kernel, dial queue
  double scalar_seconds = 0.0;  // scalar kernel, dial queue
  std::size_t cells_swept = 0;
  double speedup() const {
    return dial_seconds > 0.0 ? heap_seconds / dial_seconds : 0.0;
  }
  double simd_speedup() const {
    return dial_seconds > 0.0 ? scalar_seconds / dial_seconds : 0.0;
  }
  double cells_per_second() const {
    return dial_seconds > 0.0
               ? static_cast<double>(cells_swept) / dial_seconds
               : 0.0;
  }
};

/// Time heap-vs-dial and scalar-vs-simd on one workload; counts map
/// divergences into the respective counters.
GridResult bench_grid(const std::string& name, const synth::Workload& workload,
                      std::size_t scenarios, int rounds, simd::Mode mode,
                      std::size_t& queue_divergences,
                      std::size_t& simd_divergences) {
  const firelib::FireEnvironment& env = workload.environment;
  Rng truth_rng(5);
  const synth::GroundTruth truth = synth::generate_ground_truth(
      env, workload.truth_config, truth_rng);
  const firelib::IgnitionMap& start = truth.fire_lines[0];
  const double horizon = truth.step_minutes;

  const auto& space = firelib::ScenarioSpace::table1();
  Rng rng(2022);
  std::vector<firelib::Scenario> batch;
  for (std::size_t i = 0; i < scenarios; ++i) batch.push_back(space.sample(rng));

  const firelib::FireSpreadModel model;
  firelib::FirePropagator heap(model);
  heap.set_sweep_queue(firelib::SweepQueue::kHeap);
  heap.set_simd_mode(mode);
  firelib::FirePropagator dial(model);
  dial.set_sweep_queue(firelib::SweepQueue::kDial);
  dial.set_simd_mode(mode);
  firelib::FirePropagator scalar(model);
  scalar.set_sweep_queue(firelib::SweepQueue::kDial);
  scalar.set_simd_mode(simd::Mode::kScalar);
  firelib::PropagationWorkspace heap_ws, dial_ws, scalar_ws;

  GridResult result;
  result.name = name;
  result.rows = env.rows();
  result.cols = env.cols();

  // Warm all three arms once, checking equivalence per scenario: the dial
  // arm against the heap arm (queue discipline) and against the scalar
  // oracle (relax kernel).
  for (const firelib::Scenario& scenario : batch) {
    const auto& from_dial = dial.propagate(env, scenario, start, horizon, dial_ws);
    const auto& from_heap = heap.propagate(env, scenario, start, horizon, heap_ws);
    if (!(from_dial == from_heap)) ++queue_divergences;
    const auto& from_scalar =
        scalar.propagate(env, scenario, start, horizon, scalar_ws);
    if (!(from_dial == from_scalar)) ++simd_divergences;
  }

  Stopwatch watch;
  for (int round = 0; round < rounds; ++round)
    for (const firelib::Scenario& scenario : batch)
      dial.propagate(env, scenario, start, horizon, dial_ws);
  result.dial_seconds = watch.elapsed_seconds();
  watch.reset();
  for (int round = 0; round < rounds; ++round)
    for (const firelib::Scenario& scenario : batch)
      heap.propagate(env, scenario, start, horizon, heap_ws);
  result.heap_seconds = watch.elapsed_seconds();
  watch.reset();
  for (int round = 0; round < rounds; ++round)
    for (const firelib::Scenario& scenario : batch)
      scalar.propagate(env, scenario, start, horizon, scalar_ws);
  result.scalar_seconds = watch.elapsed_seconds();
  // Map-output throughput (cells of ignition map produced per second), kept
  // out of the timed loops so the measurements stay symmetric.
  result.cells_swept = static_cast<std::size_t>(env.rows()) *
                       static_cast<std::size_t>(env.cols()) * batch.size() *
                       static_cast<std::size_t>(rounds);
  return result;
}

struct BatchedResult {
  std::string name;
  std::size_t batch = 0;
  double loop_seconds = 0.0;     // per-scenario scalar-backend loop
  double batched_seconds = 0.0;  // one BatchSweep launch per round
  std::size_t table_groups = 0;  // travel tables built once per group
  double speedup() const {
    return batched_seconds > 0.0 ? loop_seconds / batched_seconds : 0.0;
  }
};

/// Time one BatchSweep launch against the per-scenario propagator loop on
/// one workload; counts per-scenario map divergences into the counter.
BatchedResult bench_batched(const std::string& name,
                            const synth::Workload& workload,
                            std::size_t batch_size, int rounds,
                            simd::Mode mode,
                            std::size_t& batched_divergences) {
  const firelib::FireEnvironment& env = workload.environment;
  Rng truth_rng(5);
  const synth::GroundTruth truth = synth::generate_ground_truth(
      env, workload.truth_config, truth_rng);
  const firelib::IgnitionMap& start = truth.fire_lines[0];
  const double horizon = truth.step_minutes;

  const auto& space = firelib::ScenarioSpace::table1();
  Rng rng(2022);
  std::vector<firelib::Scenario> batch;
  for (std::size_t i = 0; i < batch_size; ++i)
    batch.push_back(space.sample(rng));
  std::vector<const firelib::Scenario*> pointers;
  for (const firelib::Scenario& scenario : batch)
    pointers.push_back(&scenario);

  const firelib::FireSpreadModel model;
  firelib::FirePropagator scalar(model);
  scalar.set_simd_mode(mode);
  firelib::BatchSweep batched(model);
  batched.set_simd_mode(mode);
  firelib::PropagationWorkspace scalar_ws;

  // Warm both arms once, checking per-scenario equivalence.
  const std::vector<firelib::IgnitionMap> maps =
      batched.sweep(env, pointers, start, horizon);
  for (std::size_t i = 0; i < batch.size(); ++i)
    if (!(maps[i] ==
          scalar.propagate(env, batch[i], start, horizon, scalar_ws)))
      ++batched_divergences;

  BatchedResult result;
  result.name = name;
  result.batch = batch_size;
  result.table_groups = batched.last_table_groups();

  Stopwatch watch;
  for (int round = 0; round < rounds; ++round)
    for (const firelib::Scenario& scenario : batch)
      scalar.propagate(env, scenario, start, horizon, scalar_ws);
  result.loop_seconds = watch.elapsed_seconds();
  watch.reset();
  for (int round = 0; round < rounds; ++round)
    batched.sweep(env, pointers, start, horizon);
  result.batched_seconds = watch.elapsed_seconds();
  return result;
}

/// Heap-vs-dial and scalar-vs-simd over every workload of the default
/// campaign catalog (the acceptance sweep): point ignitions, a handful of
/// scenarios each.
std::size_t check_default_catalog(simd::Mode mode,
                                  std::size_t& queue_divergences,
                                  std::size_t& simd_divergences) {
  const std::vector<synth::Workload> catalog =
      synth::generate_catalog(synth::CatalogSpec{});
  const firelib::FireSpreadModel model;
  firelib::FirePropagator heap(model);
  heap.set_sweep_queue(firelib::SweepQueue::kHeap);
  heap.set_simd_mode(mode);
  firelib::FirePropagator dial(model);
  dial.set_sweep_queue(firelib::SweepQueue::kDial);
  dial.set_simd_mode(mode);
  firelib::FirePropagator scalar(model);
  scalar.set_sweep_queue(firelib::SweepQueue::kDial);
  scalar.set_simd_mode(simd::Mode::kScalar);
  firelib::PropagationWorkspace heap_ws, dial_ws, scalar_ws;

  const auto& space = firelib::ScenarioSpace::table1();
  Rng rng(7);
  for (const synth::Workload& workload : catalog) {
    const firelib::FireEnvironment& env = workload.environment;
    const std::vector<CellIndex> ignition{{env.rows() / 2, env.cols() / 2}};
    for (int trial = 0; trial < 3; ++trial) {
      const firelib::Scenario scenario = space.sample(rng);
      const double horizon = rng.uniform(30.0, 180.0);
      const auto& from_dial =
          dial.propagate(env, scenario, ignition, horizon, dial_ws);
      const auto& from_heap =
          heap.propagate(env, scenario, ignition, horizon, heap_ws);
      if (!(from_dial == from_heap)) ++queue_divergences;
      const auto& from_scalar =
          scalar.propagate(env, scenario, ignition, horizon, scalar_ws);
      if (!(from_dial == from_scalar)) ++simd_divergences;
    }
  }
  return catalog.size();
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  simd::Mode mode = simd::Mode::kAuto;
  const char* json_path = "BENCH_sweep.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--simd") == 0 && i + 1 < argc) {
      const auto parsed = simd::parse_simd_mode(argv[++i]);
      if (!parsed) {
        std::fprintf(stderr, "--simd expects auto|avx2|scalar, got '%s'\n",
                     argv[i]);
        return 1;
      }
      mode = *parsed;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 1;
    }
  }

  const simd::Isa resolved = simd::resolve(mode);
  if (mode == simd::Mode::kAvx2 && resolved != simd::Isa::kAvx2) {
    // Forced AVX2 on a host without it: a scalar-vs-scalar "comparison"
    // would report nothing useful, so skip loudly instead (CI treats this
    // exit 0 + marker as skipped, not passed).
    std::printf(
        "sweep benchmark SKIPPED: --simd avx2 requested but this host does "
        "not support AVX2+FMA (detected: %s)\n",
        simd::to_string(simd::detected_isa()));
    std::FILE* out = std::fopen(json_path, "w");
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_path);
      return 1;
    }
    std::fprintf(out, "{\n  \"benchmark\": \"sweep\",\n  \"skipped\": true,\n");
    std::fprintf(out,
                 "  \"skip_reason\": \"avx2 requested but unsupported\",\n");
    std::fprintf(out, "  \"hardware\": {%s},\n",
                 benchmain::hardware_json_fields().c_str());
    std::fprintf(out, "  \"settings\": {\"simd_mode\": \"%s\"}\n}\n",
                 simd::to_string(mode));
    std::fclose(out);
    std::printf("wrote %s\n", json_path);
    return 0;
  }

  // Bench-wide metrics registry: the sweep counters (pops, pushes, stale
  // pops, bucket re-drains) behind the timings land in the JSON below.
  obs::MetricsRegistry metrics;
  obs::install_metrics_registry(&metrics);

  const int grid = quick ? 48 : 64;
  const std::size_t scenarios = quick ? 16 : 32;
  const int rounds = quick ? 30 : 90;

  std::printf(
      "sweep benchmark: heap vs dial, scalar vs %s, %dx%d grids (%s)\n",
      simd::to_string(resolved), grid, grid, quick ? "quick" : "full");

  std::size_t queue_divergences = 0;
  std::size_t simd_divergences = 0;
  std::vector<GridResult> results;
  results.push_back(bench_grid("plains-uniform", synth::make_plains(grid),
                               scenarios, rounds, mode, queue_divergences,
                               simd_divergences));
  results.push_back(bench_grid("hills-dem", synth::make_hills(grid), scenarios,
                               rounds, mode, queue_divergences,
                               simd_divergences));
  // Double-edge grid: the regime the dial queue exists for — the heap's
  // log n grows with the active front, the bucket scan does not.
  results.push_back(bench_grid("plains-large", synth::make_plains(2 * grid),
                               scenarios / 2, std::max(1, rounds / 4), mode,
                               queue_divergences, simd_divergences));
  for (const GridResult& r : results)
    std::printf(
        "  %-14s %8.3fs heap  %8.3fs dial  %5.2fx queue  %5.2fx simd  "
        "(%.3g cells/sec)\n",
        r.name.c_str(), r.heap_seconds, r.dial_seconds, r.speedup(),
        r.simd_speedup(), r.cells_per_second());

  // Batched-backend arm: uniform terrain, the regime BatchSweep targets
  // (DEM workloads take its per-scenario fallback and would time the same
  // loop twice).
  std::size_t batched_divergences = 0;
  std::vector<BatchedResult> batched_results;
  for (const std::size_t batch : {std::size_t{8}, std::size_t{64}})
    batched_results.push_back(
        bench_batched("plains-batched", synth::make_plains(grid), batch,
                      std::max(1, rounds / 4), mode, batched_divergences));
  for (const BatchedResult& r : batched_results)
    std::printf(
        "  %-14s batch=%-3zu %8.3fs loop  %8.3fs batched  %5.2fx batched  "
        "(%zu table groups)\n",
        r.name.c_str(), r.batch, r.loop_seconds, r.batched_seconds,
        r.speedup(), r.table_groups);

  const std::size_t catalog_workloads =
      check_default_catalog(mode, queue_divergences, simd_divergences);
  std::printf(
      "  default catalog: %zu workloads checked, %zu queue / %zu simd "
      "divergences\n",
      catalog_workloads, queue_divergences, simd_divergences);
  const bool bit_identical = queue_divergences == 0 &&
                             simd_divergences == 0 && batched_divergences == 0;
  std::printf(
      "  bit-identical across heap/dial, scalar/%s and scalar/batched "
      "pairs: %s\n",
      simd::to_string(resolved), bit_identical ? "true" : "false");

  std::FILE* out = std::fopen(json_path, "w");
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return 1;
  }
  std::fprintf(out, "{\n  \"benchmark\": \"sweep\",\n");
  std::fprintf(out, "  \"quick\": %s,\n", quick ? "true" : "false");
  std::fprintf(out, "  \"hardware\": {%s},\n",
               benchmain::hardware_json_fields().c_str());
  std::fprintf(out, "  %s,\n", benchmain::metrics_json_field().c_str());
  std::fprintf(out,
               "  \"settings\": {\"simd_mode\": \"%s\", "
               "\"simd_active\": \"%s\", \"queue\": \"heap-vs-dial\"},\n",
               simd::to_string(mode), simd::to_string(resolved));
  std::fprintf(out, "  \"grids\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const GridResult& r = results[i];
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"rows\": %d, \"cols\": %d, "
                 "\"heap_seconds\": %.6f, \"dial_seconds\": %.6f, "
                 "\"scalar_seconds\": %.6f, \"speedup\": %.4f, "
                 "\"simd_speedup\": %.4f, \"cells_per_second\": %.1f}%s\n",
                 r.name.c_str(), r.rows, r.cols, r.heap_seconds,
                 r.dial_seconds, r.scalar_seconds, r.speedup(),
                 r.simd_speedup(), r.cells_per_second(),
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"batched\": [\n");
  for (std::size_t i = 0; i < batched_results.size(); ++i) {
    const BatchedResult& r = batched_results[i];
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"batch\": %zu, "
                 "\"loop_seconds\": %.6f, \"batched_seconds\": %.6f, "
                 "\"speedup\": %.4f, \"table_groups\": %zu}%s\n",
                 r.name.c_str(), r.batch, r.loop_seconds, r.batched_seconds,
                 r.speedup(), r.table_groups,
                 i + 1 < batched_results.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"catalog_workloads_checked\": %zu,\n",
               catalog_workloads);
  std::fprintf(out, "  \"queue_divergences\": %zu,\n", queue_divergences);
  std::fprintf(out, "  \"simd_divergences\": %zu,\n", simd_divergences);
  std::fprintf(out, "  \"batched_divergences\": %zu,\n", batched_divergences);
  std::fprintf(out, "  \"bit_identical\": %s\n}\n",
               bit_identical ? "true" : "false");
  std::fclose(out);
  std::printf("wrote %s\n", json_path);
  return bit_identical ? 0 : 1;
}
