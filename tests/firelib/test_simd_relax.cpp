// Bit-exactness property tests for the vectorized relax kernel: the AVX2
// 8-lane kernel must reproduce the scalar oracle exactly — at the kernel
// level (same admission mask, same arrival bits) and through whole sweeps
// (identical ignition maps AND identical push order, which the dial queue's
// epoch mechanism makes observable) — across heap/dial queues,
// uniform/fuel-mosaic/DEM terrains, point and continuation seeding, and the
// whole default campaign catalog. On hosts without AVX2 the vector-specific
// tests skip with a notice; mode resolution and the scalar fallback are
// still exercised.
#include <gtest/gtest.h>

#include <array>
#include <cstring>

#include "common/rng.hpp"
#include "common/simd.hpp"
#include "firelib/environment.hpp"
#include "firelib/propagator.hpp"
#include "firelib/relax_kernel.hpp"
#include "firelib/scenario.hpp"
#include "synth/catalog.hpp"

namespace essns::firelib {
namespace {

FireEnvironment uniform_env(int size) {
  return FireEnvironment(size, size, 100.0);
}

FireEnvironment fuel_mosaic_env(int size) {
  FireEnvironment env(size, size, 100.0);
  Grid<std::uint8_t> fuel(size, size, 1);
  for (int r = 0; r < size; ++r)
    for (int c = 0; c < size; ++c) {
      const int code = (r * 7 + c * 3) % 15;
      fuel(r, c) = static_cast<std::uint8_t>(code > 13 ? 0 : code);  // 0 = rock
    }
  env.set_fuel_map(std::move(fuel));
  return env;
}

FireEnvironment dem_env(int size) {
  FireEnvironment env(size, size, 100.0);
  Grid<double> slope(size, size, 0.0);
  Grid<double> aspect(size, size, 0.0);
  for (int r = 0; r < size; ++r)
    for (int c = 0; c < size; ++c) {
      slope(r, c) = (r * 13 + c * 5) % 40;
      aspect(r, c) = (r * 31 + c * 17) % 360;
    }
  env.set_topography(std::move(slope), std::move(aspect));
  return env;
}

bool host_has_avx2() { return simd::detected_isa() == simd::Isa::kAvx2; }

TEST(SimdRelaxKernelTest, ModeResolutionOnPropagator) {
  const FireSpreadModel model;
  FirePropagator propagator(model);
  EXPECT_EQ(propagator.simd_mode(), simd::Mode::kAuto);
  EXPECT_EQ(propagator.simd_isa(), simd::detected_isa());
  propagator.set_simd_mode(simd::Mode::kScalar);
  EXPECT_EQ(propagator.simd_isa(), simd::Isa::kScalar);
  // Requesting avx2 on a host without it degrades to scalar, never traps.
  propagator.set_simd_mode(simd::Mode::kAvx2);
  EXPECT_EQ(propagator.simd_isa(), simd::detected_isa());
}

// Kernel-level oracle check: random times slabs, travel rows (including
// kNeverIgnited lanes — directions the model does not spread), random fuel
// byte patterns including rock, and horizons interleaved with the arrival
// range. Mask and all eight arrival doubles must match bit for bit.
TEST(SimdRelaxKernelTest, Avx2MatchesScalarOracleOnRandomLanes) {
  if (!host_has_avx2()) GTEST_SKIP() << "host has no AVX2+FMA";

  constexpr int kCols = 8;
  const NeighbourOffsets offsets = NeighbourOffsets::for_cols(kCols);
  Rng rng(99);
  for (int trial = 0; trial < 2000; ++trial) {
    AlignedVector<double> times(kCols * 3);
    for (double& t : times)
      t = rng.uniform(0.0, 1.0) < 0.3 ? kNeverIgnited
                                      : rng.uniform(0.0, 500.0);
    alignas(64) std::array<double, 8> travel;
    for (double& tt : travel)
      tt = rng.uniform(0.0, 1.0) < 0.2 ? kNeverIgnited
                                       : rng.uniform(0.1, 200.0);
    AlignedVector<std::uint8_t> fuel(kCols * 3, 1);
    const bool with_fuel = rng.uniform(0.0, 1.0) < 0.5;
    if (with_fuel)
      for (std::uint8_t& f : fuel)
        f = static_cast<std::uint8_t>(rng.uniform_int(0, 13));

    const std::size_t cell = kCols + 1 + static_cast<std::size_t>(
                                             rng.uniform_int(0, kCols - 3));
    const double time = rng.uniform(0.0, 300.0);
    const double horizon = rng.uniform(0.0, 600.0);

    alignas(32) double scalar_arrivals[8];
    alignas(32) double avx2_arrivals[8];
    const unsigned scalar_mask = relax8_candidates_scalar(
        travel.data(), times.data(), with_fuel ? fuel.data() : nullptr, cell,
        offsets, time, horizon, scalar_arrivals);
    const unsigned avx2_mask = relax8_candidates_avx2(
        travel.data(), times.data(), with_fuel ? fuel.data() : nullptr, cell,
        offsets, time, horizon, avx2_arrivals);

    ASSERT_EQ(scalar_mask, avx2_mask) << "trial " << trial;
    ASSERT_EQ(std::memcmp(scalar_arrivals, avx2_arrivals, sizeof scalar_arrivals),
              0)
        << "trial " << trial;
  }
}

/// AVX2 and scalar sweeps over the same inputs must be bit-identical, under
/// both queue disciplines, from point ignitions and continuation maps. The
/// reference path ignores the mode knob by design; included to prove the
/// knob cannot disturb it.
void expect_simd_matches(const FireEnvironment& env) {
  const FireSpreadModel model;
  for (const SweepQueue queue : {SweepQueue::kHeap, SweepQueue::kDial}) {
    for (const bool reference : {false, true}) {
      FirePropagator scalar(model);
      scalar.set_sweep_queue(queue);
      scalar.set_reference_sweep(reference);
      scalar.set_simd_mode(simd::Mode::kScalar);
      FirePropagator vector(model);
      vector.set_sweep_queue(queue);
      vector.set_reference_sweep(reference);
      vector.set_simd_mode(simd::Mode::kAvx2);

      const auto& space = ScenarioSpace::table1();
      Rng rng(4242);
      PropagationWorkspace scalar_ws, vector_ws;
      for (int trial = 0; trial < 12; ++trial) {
        const Scenario scenario = space.sample(rng);
        const double horizon = rng.uniform(10.0, 300.0);
        const std::vector<CellIndex> ignition{
            {static_cast<int>(rng.uniform_int(0, env.rows() - 1)),
             static_cast<int>(rng.uniform_int(0, env.cols() - 1))}};

        const IgnitionMap& from_scalar =
            scalar.propagate(env, scenario, ignition, horizon, scalar_ws);
        const IgnitionMap& from_vector =
            vector.propagate(env, scenario, ignition, horizon, vector_ws);
        ASSERT_EQ(from_scalar, from_vector)
            << (queue == SweepQueue::kHeap ? "heap" : "dial") << "/"
            << (reference ? "reference" : "fast") << " trial " << trial
            << " scenario " << scenario.to_string();

        // Continue from the scalar result with a fresh scenario: many
        // finite seeds at once, the widest frontier the kernel sees.
        const Scenario next = space.sample(rng);
        const IgnitionMap start = from_scalar;
        ASSERT_EQ(
            scalar.propagate(env, next, start, horizon + 60.0, scalar_ws),
            vector.propagate(env, next, start, horizon + 60.0, vector_ws))
            << (queue == SweepQueue::kHeap ? "heap" : "dial")
            << " continuation trial " << trial;
      }
    }
  }
}

TEST(SimdRelaxSweepTest, UniformTopographyScalarMatchesAvx2) {
  if (!host_has_avx2()) GTEST_SKIP() << "host has no AVX2+FMA";
  expect_simd_matches(uniform_env(32));
}

TEST(SimdRelaxSweepTest, FuelMosaicScalarMatchesAvx2) {
  if (!host_has_avx2()) GTEST_SKIP() << "host has no AVX2+FMA";
  expect_simd_matches(fuel_mosaic_env(32));
}

TEST(SimdRelaxSweepTest, DemScalarMatchesAvx2) {
  if (!host_has_avx2()) GTEST_SKIP() << "host has no AVX2+FMA";
  expect_simd_matches(dem_env(24));
}

TEST(SimdRelaxSweepTest, TieHeavyCalmSpreadMatches) {
  if (!host_has_avx2()) GTEST_SKIP() << "host has no AVX2+FMA";
  // Zero wind: the maximum number of exactly-equal arrival times — any
  // push-order difference between kernels surfaces as a tie-break change.
  const FireSpreadModel model;
  FirePropagator scalar(model);
  scalar.set_simd_mode(simd::Mode::kScalar);
  FirePropagator vector(model);
  vector.set_simd_mode(simd::Mode::kAvx2);
  const FireEnvironment env = uniform_env(41);
  Scenario s;
  s.model = 1;
  s.wind_speed = 0.0;
  s.m1 = 5.0;
  s.m10 = 6.0;
  s.m100 = 8.0;
  s.mherb = 40.0;
  const std::vector<CellIndex> many{
      {0, 0}, {0, 40}, {40, 0}, {40, 40}, {20, 20}};
  EXPECT_EQ(scalar.propagate(env, s, many, 240.0),
            vector.propagate(env, s, many, 240.0));
}

TEST(SimdRelaxSweepTest, DefaultCampaignCatalogIsBitIdentical) {
  if (!host_has_avx2()) GTEST_SKIP() << "host has no AVX2+FMA";
  const std::vector<synth::Workload> catalog =
      synth::generate_catalog(synth::CatalogSpec{});
  ASSERT_FALSE(catalog.empty());

  const FireSpreadModel model;
  FirePropagator scalar(model);
  scalar.set_simd_mode(simd::Mode::kScalar);
  FirePropagator vector(model);
  vector.set_simd_mode(simd::Mode::kAvx2);

  const auto& space = ScenarioSpace::table1();
  Rng rng(2022);
  PropagationWorkspace scalar_ws, vector_ws;
  for (const synth::Workload& workload : catalog) {
    const FireEnvironment& env = workload.environment;
    const std::vector<CellIndex> ignition{{env.rows() / 2, env.cols() / 2}};
    for (int trial = 0; trial < 3; ++trial) {
      const Scenario scenario = space.sample(rng);
      const double horizon = rng.uniform(30.0, 180.0);
      ASSERT_EQ(
          scalar.propagate(env, scenario, ignition, horizon, scalar_ws),
          vector.propagate(env, scenario, ignition, horizon, vector_ws))
          << workload.name << " trial " << trial;
    }
  }
}

TEST(SimdRelaxSweepTest, ScalarFallbackRunsEverywhere) {
  // No skip: whatever the host, forcing scalar must produce a normal sweep
  // (this is the non-AVX2 CI lane's whole coverage of the mode knob).
  const FireSpreadModel model;
  FirePropagator propagator(model);
  propagator.set_simd_mode(simd::Mode::kScalar);
  const FireEnvironment env = uniform_env(16);
  Scenario s;
  s.model = 4;
  s.wind_speed = 6.0;
  const IgnitionMap out = propagator.propagate(env, s, {{8, 8}}, 90.0);
  EXPECT_EQ(out(8, 8), 0.0);
  EXPECT_GT(burned_count(out, 90.0), 1u);
}

}  // namespace
}  // namespace essns::firelib
