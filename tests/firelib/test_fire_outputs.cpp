// Byram intensity / flame length / scorch height — the fireLib auxiliary
// outputs derived from the spread computation.
#include <gtest/gtest.h>

#include "common/units.hpp"
#include "firelib/rothermel.hpp"

namespace essns::firelib {
namespace {

MoistureSet dry() { return {0.06, 0.08, 0.10, 0.60, 0.90}; }

FireBehavior windy_grass() {
  const FireSpreadModel model;
  WindSlope ws{units::mph_to_ft_per_min(10.0), 0.0, 0.0, 0.0};
  return model.behavior(1, dry(), ws);
}

TEST(FireOutputsTest, ByramIntensityIsHeatTimesRate) {
  const FireBehavior b = windy_grass();
  const double expected = b.heat_per_unit_area * b.spread_rate_max / 60.0;
  EXPECT_NEAR(b.byram_intensity_at(b.azimuth_max), expected, 1e-9);
}

TEST(FireOutputsTest, IntensityHighestAlongHeadFire) {
  const FireBehavior b = windy_grass();
  const double head = b.byram_intensity_at(b.azimuth_max);
  const double flank = b.byram_intensity_at(b.azimuth_max + 90.0);
  const double back = b.byram_intensity_at(b.azimuth_max + 180.0);
  EXPECT_GT(head, flank);
  EXPECT_GT(flank, back);
  EXPECT_GT(back, 0.0);
}

TEST(FireOutputsTest, FlameLengthFollowsByram) {
  const FireBehavior b = windy_grass();
  const double intensity = b.byram_intensity_at(b.azimuth_max);
  EXPECT_NEAR(b.flame_length_at(b.azimuth_max),
              0.45 * std::pow(intensity, 0.46), 1e-9);
}

TEST(FireOutputsTest, FlameLengthMagnitudeForGrassHeadFire) {
  // Grass head fires at ~10 mph midflame run with flame lengths of a few
  // feet — accept a broad band.
  const FireBehavior b = windy_grass();
  const double flame = b.flame_length_at(b.azimuth_max);
  EXPECT_GT(flame, 1.0);
  EXPECT_LT(flame, 30.0);
}

TEST(FireOutputsTest, ZeroSpreadGivesZeroOutputs) {
  const FireSpreadModel model;
  MoistureSet soaked{0.5, 0.5, 0.5, 3.0, 3.0};
  const FireBehavior b = model.behavior(1, soaked, {});
  EXPECT_DOUBLE_EQ(b.byram_intensity_at(0.0), 0.0);
  EXPECT_DOUBLE_EQ(b.flame_length_at(0.0), 0.0);
  EXPECT_DOUBLE_EQ(b.scorch_height_at(0.0, 77.0), 0.0);
}

TEST(FireOutputsTest, ScorchHeightPositiveAndGrowsWithAirTemperature) {
  const FireBehavior b = windy_grass();
  const double cool = b.scorch_height_at(b.azimuth_max, 50.0);
  const double hot = b.scorch_height_at(b.azimuth_max, 100.0);
  EXPECT_GT(cool, 0.0);
  EXPECT_GT(hot, cool);
}

TEST(FireOutputsTest, ScorchSaturatesAtLethalAirTemperature) {
  const FireBehavior b = windy_grass();
  EXPECT_GE(b.scorch_height_at(b.azimuth_max, 140.0), 1e8);
}

TEST(FireOutputsTest, HeavierFuelsProduceLongerFlames) {
  const FireSpreadModel model;
  WindSlope ws{units::mph_to_ft_per_min(6.0), 0.0, 0.0, 0.0};
  const FireBehavior grass = model.behavior(1, dry(), ws);
  const FireBehavior slash = model.behavior(13, dry(), ws);
  EXPECT_GT(slash.flame_length_at(slash.azimuth_max),
            grass.flame_length_at(grass.azimuth_max) * 0.5);
  // Slash burns slower but hotter per area: higher heat_per_unit_area.
  EXPECT_GT(slash.heat_per_unit_area, grass.heat_per_unit_area);
}

}  // namespace
}  // namespace essns::firelib
