#include "ea/operators.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace essns::ea {

std::size_t roulette_select(std::span<const double> scores, Rng& rng) {
  ESSNS_REQUIRE(!scores.empty(), "selection over empty score set");
  const double lo = *std::min_element(scores.begin(), scores.end());
  const double shift = lo < 0.0 ? -lo : 0.0;
  double total = 0.0;
  for (double s : scores) total += s + shift;
  if (total <= 0.0) {
    return static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(scores.size()) - 1));
  }
  const double draw = rng.uniform(0.0, total);
  double acc = 0.0;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    acc += scores[i] + shift;
    if (draw < acc) return i;
  }
  return scores.size() - 1;  // numeric edge: draw == total
}

std::size_t tournament_select(std::span<const double> scores, int k, Rng& rng) {
  ESSNS_REQUIRE(!scores.empty(), "selection over empty score set");
  ESSNS_REQUIRE(k >= 1, "tournament size must be >= 1");
  std::size_t best = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(scores.size()) - 1));
  for (int i = 1; i < k; ++i) {
    const std::size_t challenger = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(scores.size()) - 1));
    if (scores[challenger] > scores[best]) best = challenger;
  }
  return best;
}

std::pair<Genome, Genome> uniform_crossover(const Genome& a, const Genome& b,
                                            Rng& rng) {
  ESSNS_REQUIRE(a.size() == b.size(), "parents must share genome length");
  Genome c1 = a, c2 = b;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (rng.bernoulli(0.5)) std::swap(c1[i], c2[i]);
  return {std::move(c1), std::move(c2)};
}

std::pair<Genome, Genome> blx_crossover(const Genome& a, const Genome& b,
                                        double alpha, Rng& rng) {
  ESSNS_REQUIRE(a.size() == b.size(), "parents must share genome length");
  ESSNS_REQUIRE(alpha >= 0.0, "BLX alpha must be non-negative");
  Genome c1(a.size()), c2(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double lo = std::min(a[i], b[i]);
    const double hi = std::max(a[i], b[i]);
    const double span = hi - lo;
    const double from = std::max(0.0, lo - alpha * span);
    const double to = std::min(1.0, hi + alpha * span);
    c1[i] = rng.uniform(from, to);
    c2[i] = rng.uniform(from, to);
  }
  return {std::move(c1), std::move(c2)};
}

double reflect_unit(double value) {
  if (value >= 0.0 && value <= 1.0) return value;
  // Reflect around [0,1]: pattern repeats with period 2.
  double v = std::fmod(std::fabs(value), 2.0);
  return v <= 1.0 ? v : 2.0 - v;
}

void gaussian_mutation(Genome& genome, double rate, double sigma, Rng& rng) {
  ESSNS_REQUIRE(rate >= 0.0 && rate <= 1.0, "mutation rate in [0,1]");
  ESSNS_REQUIRE(sigma >= 0.0, "mutation sigma non-negative");
  for (double& g : genome)
    if (rng.bernoulli(rate)) g = reflect_unit(g + rng.normal(0.0, sigma));
}

void uniform_reset_mutation(Genome& genome, double rate, Rng& rng) {
  ESSNS_REQUIRE(rate >= 0.0 && rate <= 1.0, "mutation rate in [0,1]");
  for (double& g : genome)
    if (rng.bernoulli(rate)) g = rng.uniform();
}

}  // namespace essns::ea
