// Differential Evolution: the Optimization Stage metaheuristic of ESSIM-DE
// (Tardivo et al.). Implements the DE/rand/1/bin and DE/best/1/bin variants
// with the diversity-preserving result selection the ESSIM-DE papers describe
// (a fraction of the returned set is taken regardless of fitness), plus hooks
// for the automatic/dynamic tuning operators in ea/tuning.hpp.
#pragma once

#include "ea/individual.hpp"

namespace essns::ea {

enum class DeVariant {
  kRand1Bin,  ///< classic DE/rand/1/bin
  kBest1Bin,  ///< DE/best/1/bin (faster convergence, less diversity)
};

struct DeConfig {
  std::size_t population_size = 32;
  double differential_weight = 0.7;  ///< F
  double crossover_rate = 0.5;       ///< CR
  DeVariant variant = DeVariant::kRand1Bin;
};

/// Tuning callback: invoked after each generation with (generation,
/// population); may mutate the population (e.g. restart). Returns true when
/// it intervened, so callers can count tuning events.
using TuningHook = std::function<bool(int, Population&)>;

struct DeResult {
  Population population;
  Individual best;
  int generations = 0;
  std::size_t evaluations = 0;
  int tuning_events = 0;
};

/// Run DE: maximize `evaluate` over [0,1]^dim. Out-of-range trial vectors are
/// reflected back into the unit box.
/// `initial`, when non-null, seeds the population (size must match config);
/// used by the ESSIM island model between migration rounds.
DeResult run_de(const DeConfig& config, std::size_t dim,
                const BatchEvaluator& evaluate, const StopCondition& stop,
                Rng& rng, const GenerationObserver& observer = nullptr,
                const TuningHook& tuning = nullptr,
                const Population* initial = nullptr);

}  // namespace essns::ea
