#include "ess/config.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"
#include "common/parse.hpp"
#include "core/ns_de.hpp"
#include "obs/session.hpp"

namespace essns::ess {
namespace {

// NS-DE packaged as an Optimizer (the §IV alternate-metaheuristic variant).
class NsDeOptimizer final : public Optimizer {
 public:
  explicit NsDeOptimizer(core::NsDeConfig config) : config_(config) {}
  std::string name() const override { return "ESS-NS(DE)"; }
  OptimizationOutcome optimize(std::size_t dim,
                               const ea::BatchEvaluator& evaluate,
                               const ea::StopCondition& stop,
                               Rng& rng) override {
    core::NsDeResult r = core::run_ns_de(config_, dim, evaluate, stop, rng);
    OptimizationOutcome out;
    out.solutions = std::move(r.best_set);
    if (!out.solutions.empty()) out.best = out.solutions.front();
    out.generations = r.generations;
    out.evaluations = r.evaluations;
    return out;
  }

 private:
  core::NsDeConfig config_;
};

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

}  // namespace

const std::vector<std::string>& RunSpec::known_methods() {
  static const std::vector<std::string> methods{
      "ess-ga",  "essim-ea", "essim-de", "essim-de-tuned",
      "ess-ns",  "ns-de",    "essim-monitor"};
  return methods;
}

RunSpec parse_run_spec(std::istream& in) {
  RunSpec spec;
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const std::string stripped = trim(line);
    if (stripped.empty() || stripped.front() == '#') continue;
    const auto eq = stripped.find('=');
    ESSNS_REQUIRE(eq != std::string::npos,
                  "config line " + std::to_string(line_number) +
                      " is not key=value: " + stripped);
    const std::string key = trim(stripped.substr(0, eq));
    const std::string value = trim(stripped.substr(eq + 1));
    ESSNS_REQUIRE(!value.empty(), "config key '" + key + "' has empty value");

    auto as_int = [&](int lo) {
      const auto v = parse_int(value);
      ESSNS_REQUIRE(v.has_value() && *v >= lo,
                    "bad integer for config key '" + key + "': " + value);
      return *v;
    };
    auto as_double = [&] {
      const auto v = parse_double(value);
      ESSNS_REQUIRE(v.has_value(),
                    "bad number for config key '" + key + "': " + value);
      return *v;
    };

    if (key == "workload") spec.workload = value;
    else if (key == "size") spec.size = as_int(8);
    else if (key == "method") spec.method = value;
    else if (key == "seed") spec.seed = static_cast<std::uint64_t>(as_double());
    else if (key == "generations") spec.generations = as_int(1);
    else if (key == "fitness_threshold") spec.fitness_threshold = as_double();
    else if (key == "population") spec.population = static_cast<std::size_t>(as_int(2));
    else if (key == "offspring") spec.offspring = static_cast<std::size_t>(as_int(1));
    else if (key == "workers") spec.workers = static_cast<unsigned>(as_int(1));
    else if (key == "novelty_k") spec.novelty_k = as_int(0);
    else if (key == "islands") spec.islands = as_int(1);
    else if (key == "cache") {
      const auto policy = cache::parse_cache_policy(value);
      if (!policy)
        throw InvalidArgument(
            "config key 'cache' expects off|step|shared, got: " + value);
      spec.cache_policy = *policy;
    }
    else if (key == "cache_mem")
      spec.cache_mem_mb = static_cast<std::size_t>(as_int(1));
    else if (key == "simd") {
      const auto mode = simd::parse_simd_mode(value);
      if (!mode)
        throw InvalidArgument(
            "config key 'simd' expects auto|avx2|scalar, got: " + value);
      spec.simd_mode = *mode;
    }
    else if (key == "numa") {
      const auto mode = parallel::parse_numa_mode(value);
      if (!mode)
        throw InvalidArgument(
            "config key 'numa' expects off|auto|on, got: " + value);
      spec.numa_mode = *mode;
    }
    else if (key == "backend") {
      const auto backend = firelib::parse_sweep_backend(value);
      if (!backend)
        throw InvalidArgument(
            "config key 'backend' expects scalar|batched, got: " + value);
      spec.backend = *backend;
    }
    else if (key == "trace")
      spec.trace_out = value == "none" ? "" : value;
    else if (key == "metrics_out")
      spec.metrics_out = value == "none" ? "" : value;
    else throw InvalidArgument("unknown config key: " + key);
  }
  const auto& methods = RunSpec::known_methods();
  ESSNS_REQUIRE(std::find(methods.begin(), methods.end(), spec.method) !=
                    methods.end(),
                "unknown method: " + spec.method);
  ESSNS_REQUIRE(spec.workload == "plains" || spec.workload == "hills" ||
                    spec.workload == "wind_shift",
                "unknown workload: " + spec.workload);
  return spec;
}

RunSpec parse_run_spec(const std::string& text) {
  std::istringstream in(text);
  return parse_run_spec(in);
}

synth::Workload make_workload(const RunSpec& spec) {
  if (spec.workload == "hills") return synth::make_hills(spec.size);
  if (spec.workload == "wind_shift") return synth::make_wind_shift(spec.size);
  return synth::make_plains(spec.size);
}

std::unique_ptr<Optimizer> make_optimizer(const RunSpec& spec) {
  if (spec.method == "ess-ga") {
    ea::GaConfig ga;
    ga.population_size = spec.population;
    ga.offspring_count = spec.offspring;
    return std::make_unique<GaOptimizer>(ga);
  }
  if (spec.method == "essim-ea") {
    IslandOptimizer::Options opt;
    opt.islands = spec.islands;
    opt.ga.population_size =
        std::max<std::size_t>(4, spec.population / static_cast<std::size_t>(spec.islands));
    opt.ga.offspring_count = opt.ga.population_size;
    opt.ga.elite_count = 1;
    return std::make_unique<IslandOptimizer>(opt);
  }
  if (spec.method == "essim-de" || spec.method == "essim-de-tuned") {
    DeOptimizer::Options opt;
    opt.de.population_size = spec.population;
    opt.with_tuning = spec.method == "essim-de-tuned";
    return std::make_unique<DeOptimizer>(opt);
  }
  if (spec.method == "ns-de") {
    core::NsDeConfig cfg;
    cfg.population_size = spec.population;
    cfg.novelty_k = spec.novelty_k;
    return std::make_unique<NsDeOptimizer>(cfg);
  }
  if (spec.method == "ess-ns") {
    core::NsGaConfig cfg;
    cfg.population_size = spec.population;
    cfg.offspring_count = spec.offspring;
    cfg.novelty_k = spec.novelty_k;
    return std::make_unique<NsGaOptimizer>(cfg);
  }
  throw InvalidArgument("method '" + spec.method +
                        "' is not an Optimizer (use run_spec)");
}

PipelineResult run_spec(const RunSpec& spec) {
  // Run-wide observability: a no-op when both paths are empty, so plain
  // runs never touch the global recorder/registry slots.
  obs::ObsSession obs_session(spec.trace_out, spec.metrics_out);
  synth::Workload workload = make_workload(spec);
  Rng truth_rng(spec.seed);
  const synth::GroundTruth truth = synth::generate_ground_truth(
      workload.environment, workload.truth_config, truth_rng);
  Rng rng(spec.seed ^ 0x5eedULL);

  if (spec.method == "essim-monitor") {
    EssimConfig config;
    config.islands = spec.islands;
    config.ga.population_size =
        std::max<std::size_t>(4, spec.population / static_cast<std::size_t>(spec.islands));
    config.ga.offspring_count = config.ga.population_size;
    config.ga.elite_count = 1;
    config.stop = {spec.generations, spec.fitness_threshold};
    config.workers = spec.workers;
    EssimSystem system(workload.environment, truth, config);
    const EssimResult essim = system.run(rng);

    PipelineResult out;
    out.optimizer_name = "ESSIM(Monitor)";
    for (const auto& step : essim.steps) {
      StepReport report;
      report.step = step.step;
      report.kign = step.kign;
      report.prediction_quality = step.prediction_quality;
      report.calibration_fitness =
          step.islands[static_cast<std::size_t>(step.selected_island)].fitness;
      out.steps.push_back(report);
    }
    obs_session.finish();  // EssimSystem's pools joined when run() returned
    return out;
  }

  PipelineConfig config;
  config.stop = {spec.generations, spec.fitness_threshold};
  config.workers = spec.workers;
  config.cache_policy = spec.cache_policy;
  config.cache_mem_bytes = spec.cache_mem_mb << 20;
  config.simd_mode = spec.simd_mode;
  config.numa_mode = spec.numa_mode;
  config.backend = spec.backend;
  PredictionPipeline pipeline(workload.environment, truth, config);
  auto optimizer = make_optimizer(spec);
  PipelineResult result = pipeline.run(*optimizer, rng);
  obs_session.finish();  // the pipeline's evaluator pool is still alive, but
                         // idle: run() has returned, no thread is recording
  return result;
}

}  // namespace essns::ess
