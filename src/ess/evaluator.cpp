#include "ess/evaluator.hpp"

#include "common/error.hpp"
#include "ess/fitness.hpp"

namespace essns::ess {

ScenarioEvaluator::ScenarioEvaluator(const firelib::FireEnvironment& env,
                                     unsigned workers)
    : service_(env, workers) {}

void ScenarioEvaluator::set_step(const StepContext& context) {
  ESSNS_REQUIRE(context.start_map && context.target_map,
                "step context maps must be set");
  ESSNS_REQUIRE(context.end_time > context.start_time,
                "step interval must have positive length");
  context_ = context;
}

double ScenarioEvaluator::evaluate_scenario(
    const firelib::Scenario& scenario) {
  ESSNS_REQUIRE(context_.start_map, "set_step must be called before evaluate");
  const firelib::IgnitionMap simulated =
      simulate(scenario, *context_.start_map, context_.end_time);
  return jaccard_at(*context_.target_map, simulated, context_.end_time,
                    context_.start_time);
}

firelib::IgnitionMap ScenarioEvaluator::simulate(
    const firelib::Scenario& scenario, const firelib::IgnitionMap& start,
    double end_time) {
  return service_.simulate(scenario, start, end_time);
}

std::vector<firelib::IgnitionMap> ScenarioEvaluator::simulate_batch(
    const std::vector<firelib::Scenario>& scenarios,
    const firelib::IgnitionMap& start, double end_time) {
  return service_.simulate_batch(scenarios, start, end_time);
}

std::vector<double> ScenarioEvaluator::evaluate_batch(
    const std::vector<ea::Genome>& genomes) {
  ESSNS_REQUIRE(context_.start_map, "set_step must be called before evaluate");
  const auto& space = firelib::ScenarioSpace::table1();
  std::vector<firelib::Scenario> scenarios;
  scenarios.reserve(genomes.size());
  for (const ea::Genome& genome : genomes)
    scenarios.push_back(space.decode(genome));
  return service_.fitness_batch(scenarios, *context_.start_map,
                                *context_.target_map, context_.start_time,
                                context_.end_time);
}

ea::BatchEvaluator ScenarioEvaluator::batch_evaluator() {
  return [this](const std::vector<ea::Genome>& genomes) {
    return evaluate_batch(genomes);
  };
}

}  // namespace essns::ess
