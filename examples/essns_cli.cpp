// essns_cli: run any configured prediction system from key=value arguments
// or a config file — the command-line front door to the library.
//
//   essns_cli method=ess-ns workload=wind_shift size=48 generations=25
//   essns_cli @run.conf            (read keys from a file)
//   essns_cli --help
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/table.hpp"
#include "ess/config.hpp"

int main(int argc, char** argv) {
  using namespace essns;

  if (argc > 1 && std::strcmp(argv[1], "--help") == 0) {
    std::printf(
        "usage: essns_cli [key=value ...] [@config-file]\n\n"
        "keys: workload size method seed generations fitness_threshold\n"
        "      population offspring workers novelty_k islands\n"
        "methods:");
    for (const auto& m : ess::RunSpec::known_methods())
      std::printf(" %s", m.c_str());
    std::printf("\nworkloads: plains hills wind_shift\n");
    return 0;
  }

  std::ostringstream config_text;
  for (int i = 1; i < argc; ++i) {
    if (argv[i][0] == '@') {
      std::ifstream file(argv[i] + 1);
      if (!file) {
        std::fprintf(stderr, "cannot open config file %s\n", argv[i] + 1);
        return 1;
      }
      config_text << file.rdbuf() << '\n';
    } else {
      config_text << argv[i] << '\n';
    }
  }

  ess::RunSpec spec;
  try {
    spec = ess::parse_run_spec(config_text.str());
  } catch (const Error& e) {
    std::fprintf(stderr, "config error: %s\n", e.what());
    return 1;
  }

  std::printf("running %s on %s (%dx%d), seed %llu, %d generations\n",
              spec.method.c_str(), spec.workload.c_str(), spec.size, spec.size,
              static_cast<unsigned long long>(spec.seed), spec.generations);

  const ess::PipelineResult result = ess::run_spec(spec);

  TextTable table(result.optimizer_name + " on " + spec.workload);
  table.set_header({"predicted", "Kign", "calibration", "quality"});
  for (const auto& step : result.steps) {
    table.add_row({"t" + std::to_string(step.step), TextTable::num(step.kign, 2),
                   TextTable::num(step.calibration_fitness),
                   TextTable::num(step.prediction_quality)});
  }
  table.print();
  std::printf("mean prediction quality: %.3f\n", result.mean_quality());
  return 0;
}
