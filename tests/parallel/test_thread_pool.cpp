#include "parallel/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

namespace essns::parallel {
namespace {

TEST(ThreadPoolTest, SubmitReturnsResult) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 7 * 6; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, SubmitForwardsArguments) {
  ThreadPool pool(2);
  auto f = pool.submit([](int a, int b) { return a + b; }, 2, 3);
  EXPECT_EQ(f.get(), 5);
}

TEST(ThreadPoolTest, PropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, RunsManyTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i)
    futures.push_back(pool.submit([&counter] { ++counter; }));
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, ThreadCountReported) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.thread_count(), 3u);
}

TEST(ThreadPoolTest, RejectsZeroThreads) {
  EXPECT_THROW(ThreadPool pool(0), InvalidArgument);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL(); });
}

TEST(ThreadPoolTest, ParallelForFewerItemsThanThreads) {
  ThreadPool pool(8);
  std::atomic<int> counter{0};
  pool.parallel_for(3, [&](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 3);
}

TEST(ThreadPoolTest, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [](std::size_t i) {
                                   if (i == 5) throw std::runtime_error("x");
                                 }),
               std::runtime_error);
}

TEST(ThreadPoolTest, DestructorDrainsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) pool.submit([&counter] { ++counter; });
    // Futures discarded; destructor must still run all accepted tasks.
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, DefaultThreadCountPositive) {
  EXPECT_GE(ThreadPool::default_thread_count(), 1u);
}

TEST(ThreadPoolTest, NestedParallelForOnSingleThreadPoolCompletes) {
  // Regression: a worker calling parallel_for on its own pool used to block
  // on futures no free worker could ever run — a guaranteed deadlock on a
  // 1-thread pool. Nested calls now run inline on the calling worker.
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  auto outer = pool.submit([&] {
    pool.parallel_for(8, [&](std::size_t) { ++counter; });
    return counter.load();
  });
  EXPECT_EQ(outer.get(), 8);
}

TEST(ThreadPoolTest, NestedParallelForSaturatedPoolCompletes) {
  // Every worker re-enters parallel_for at once: with the scheduling path
  // this deadlocks as soon as all workers block; inline execution cannot.
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  pool.parallel_for(4, [&](std::size_t) {
    pool.parallel_for(16, [&](std::size_t) { ++counter; });
  });
  EXPECT_EQ(counter.load(), 4 * 16);
}

TEST(ThreadPoolTest, NestedParallelForPropagatesException) {
  ThreadPool pool(1);
  auto outer = pool.submit([&] {
    pool.parallel_for(4, [](std::size_t i) {
      if (i == 2) throw std::runtime_error("nested");
    });
  });
  EXPECT_THROW(outer.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForFromDifferentPoolStillScatters) {
  // Only re-entrant calls on the *same* pool run inline; a worker of pool A
  // driving pool B uses B's workers as usual.
  ThreadPool outer_pool(1);
  ThreadPool inner_pool(2);
  std::atomic<int> counter{0};
  auto f = outer_pool.submit([&] {
    inner_pool.parallel_for(10, [&](std::size_t) { ++counter; });
  });
  f.get();
  EXPECT_EQ(counter.load(), 10);
}

}  // namespace
}  // namespace essns::parallel
