#include "ess/calibration.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "ess/fitness.hpp"
#include "ess/statistical.hpp"

namespace essns::ess {
namespace {

TEST(KignSearchTest, FindsPerfectThresholdWhenOneExists) {
  // Probability map where cells burned in reality have p = 0.8 and cells not
  // burned have p = 0.2: any K in (0.2, 0.8] reproduces reality exactly.
  Grid<double> prob(2, 2, 0.2);
  prob(0, 0) = 0.8;
  prob(0, 1) = 0.8;
  Grid<std::uint8_t> real(2, 2, 0);
  real(0, 0) = 1;
  real(0, 1) = 1;
  Grid<std::uint8_t> pre(2, 2, 0);

  const KignSearchResult r = search_kign(prob, real, pre, 100);
  EXPECT_DOUBLE_EQ(r.fitness, 1.0);
  EXPECT_GT(r.kign, 0.2);
  EXPECT_LE(r.kign, 0.8);
  EXPECT_EQ(r.evaluated, 100);
}

TEST(KignSearchTest, TiesPreferSmallerThreshold) {
  // Uniform probability: every threshold <= 0.5 gives the same prediction.
  Grid<double> prob(2, 2, 0.5);
  Grid<std::uint8_t> real(2, 2, 1);
  Grid<std::uint8_t> pre(2, 2, 0);
  const KignSearchResult r = search_kign(prob, real, pre, 100);
  EXPECT_DOUBLE_EQ(r.fitness, 1.0);
  EXPECT_NEAR(r.kign, 0.01, 1e-9);  // the first (most inclusive) candidate
}

TEST(KignSearchTest, ResultFitnessMatchesRecomputation) {
  Rng rng(3);
  Grid<double> prob(6, 6, 0.0);
  for (auto& v : prob) v = rng.uniform();
  Grid<std::uint8_t> real(6, 6, 0);
  for (auto& v : real) v = rng.bernoulli(0.4);
  Grid<std::uint8_t> pre(6, 6, 0);

  const KignSearchResult r = search_kign(prob, real, pre, 50);
  const auto predicted = apply_kign(prob, r.kign);
  EXPECT_DOUBLE_EQ(jaccard(real, predicted, pre), r.fitness);
}

TEST(KignSearchTest, NoThresholdBeatsTheReturnedOne) {
  Rng rng(4);
  Grid<double> prob(5, 5, 0.0);
  for (auto& v : prob) v = rng.uniform();
  Grid<std::uint8_t> real(5, 5, 0);
  for (auto& v : real) v = rng.bernoulli(0.5);
  Grid<std::uint8_t> pre(5, 5, 0);

  const KignSearchResult r = search_kign(prob, real, pre, 40);
  for (int i = 1; i <= 40; ++i) {
    const double k = i / 40.0;
    const double fit = jaccard(real, apply_kign(prob, k), pre);
    EXPECT_LE(fit, r.fitness + 1e-12);
  }
}

TEST(KignSearchTest, RejectsZeroCandidates) {
  Grid<double> prob(1, 1, 0.5);
  Grid<std::uint8_t> real(1, 1, 1), pre(1, 1, 0);
  EXPECT_THROW(search_kign(prob, real, pre, 0), InvalidArgument);
}

TEST(KignSearchTest, CoarseGridStillReasonable) {
  Grid<double> prob(2, 2, 0.2);
  prob(0, 0) = 0.9;
  Grid<std::uint8_t> real(2, 2, 0);
  real(0, 0) = 1;
  Grid<std::uint8_t> pre(2, 2, 0);
  const KignSearchResult r = search_kign(prob, real, pre, 4);
  EXPECT_EQ(r.evaluated, 4);
  EXPECT_DOUBLE_EQ(r.fitness, 1.0);  // K = 0.25, 0.5 or 0.75 all separate
}

}  // namespace
}  // namespace essns::ess
