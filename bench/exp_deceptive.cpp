// EXP-X — deceptive-landscape validation of the §II-C claim: novelty search
// outperforms objective-driven metaheuristics when the fitness function is
// deceptive, and remains competitive when it is not.
//
// GA, DE and NS-GA (fitness-behaviour and genotypic-behaviour variants) run
// on four landscapes over 20 seeds each; the table reports success rate
// (escaping the deceptive attractor / reaching the optimum band) and the
// mean best fitness.
//
// Expected shape: on sphere/rastrigin everyone does well (NS slightly slower);
// on deceptive_trap and two_peaks NS success >> GA/DE success.
#include <cstdio>
#include <functional>

#include "common/table.hpp"
#include "core/ns_ga.hpp"
#include "ea/de.hpp"
#include "ea/ga.hpp"
#include "ea/landscapes.hpp"

namespace {

using namespace essns;
namespace landscapes = ea::landscapes;

struct Landscape {
  std::string name;
  double (*fn)(const ea::Genome&);
  std::size_t dim;
  double success_threshold;
};

struct Outcome {
  int successes = 0;
  double mean_best = 0.0;
};

constexpr int kSeeds = 20;
constexpr int kGenerations = 120;
constexpr std::size_t kPop = 24;

Outcome run_method(const Landscape& landscape,
                   const std::function<double(Rng&)>& best_of_run) {
  Outcome out;
  for (int seed = 0; seed < kSeeds; ++seed) {
    Rng rng(static_cast<std::uint64_t>(seed) * 7919 + 31);
    const double best = best_of_run(rng);
    out.mean_best += best;
    if (best >= landscape.success_threshold) ++out.successes;
  }
  out.mean_best /= kSeeds;
  return out;
}

}  // namespace

int main() {
  const std::vector<Landscape> suite{
      {"sphere", &landscapes::sphere, 6, 0.98},
      {"rastrigin", &landscapes::rastrigin, 4, 0.95},
      {"deceptive_trap", &landscapes::deceptive_trap, 3, 0.81},
      {"two_peaks", &landscapes::two_peaks, 3, 0.99},
  };

  for (const auto& landscape : suite) {
    const ea::StopCondition stop{kGenerations, landscape.success_threshold};
    const auto evaluate = landscapes::batch(landscape.fn);

    TextTable table("EXP-X '" + landscape.name + "' (dim " +
                    std::to_string(landscape.dim) + ", success >= " +
                    TextTable::num(landscape.success_threshold, 2) + ", " +
                    std::to_string(kSeeds) + " seeds)");
    table.set_header({"Method", "success", "mean best fitness"});

    auto add = [&](const std::string& name, const Outcome& outcome) {
      table.add_row({name,
                     std::to_string(outcome.successes) + "/" +
                         std::to_string(kSeeds),
                     TextTable::num(outcome.mean_best)});
    };

    add("GA (fitness)", run_method(landscape, [&](Rng& rng) {
          ea::GaConfig cfg;
          cfg.population_size = kPop;
          cfg.offspring_count = kPop;
          return ea::run_ga(cfg, landscape.dim, evaluate, stop, rng)
              .best.fitness;
        }));
    add("DE (fitness)", run_method(landscape, [&](Rng& rng) {
          ea::DeConfig cfg;
          cfg.population_size = kPop;
          return ea::run_de(cfg, landscape.dim, evaluate, stop, rng)
              .best.fitness;
        }));
    add("NS-GA (fitness dist, Eq.2)", run_method(landscape, [&](Rng& rng) {
          core::NsGaConfig cfg;
          cfg.population_size = kPop;
          cfg.offspring_count = kPop;
          return core::run_ns_ga(cfg, landscape.dim, evaluate, stop, rng,
                                 core::fitness_distance)
              .max_fitness;
        }));
    add("NS-GA (genotypic dist)", run_method(landscape, [&](Rng& rng) {
          core::NsGaConfig cfg;
          cfg.population_size = kPop;
          cfg.offspring_count = kPop;
          return core::run_ns_ga(cfg, landscape.dim, evaluate, stop, rng,
                                 core::genotypic_distance)
              .max_fitness;
        }));
    add("NS-GA hybrid (w=0.5)", run_method(landscape, [&](Rng& rng) {
          core::NsGaConfig cfg;
          cfg.population_size = kPop;
          cfg.offspring_count = kPop;
          cfg.fitness_blend_weight = 0.5;
          return core::run_ns_ga(cfg, landscape.dim, evaluate, stop, rng,
                                 core::genotypic_distance)
              .max_fitness;
        }));
    table.print();
    std::printf("\n");
  }
  return 0;
}
