// Optimizer: the pluggable Optimization Stage strategy.
//
// The paper frames ESS-NS as "replace the metaheuristic in the OS" while the
// rest of the pipeline is unchanged (Fig. 1 vs Fig. 3). This interface is
// that replaceable block. Four implementations cover the systems compared in
// the paper: ESS (classic GA), ESSIM-EA (island GA), ESSIM-DE (differential
// evolution, with and without tuning) and ESS-NS (the NS-GA of Algorithm 1).
//
// An optimizer returns its *solution set* — the scenarios the Statistical
// Stage aggregates. What that set is differs per system and is exactly the
// design point the paper argues about:
//   ESS / ESSIM-EA : the final evolved population;
//   ESSIM-DE       : the final population, partly chosen regardless of
//                    fitness (the diversity-preserving modification);
//   ESS-NS         : the bestSet accumulated over the whole search.
#pragma once

#include <memory>
#include <string>

#include "core/ns_ga.hpp"
#include "ea/de.hpp"
#include "ea/ga.hpp"
#include "ea/individual.hpp"

namespace essns::ess {

struct OptimizationOutcome {
  std::vector<ea::Individual> solutions;  ///< set handed to the SS
  ea::Individual best;                    ///< best-fitness individual found
  int generations = 0;
  std::size_t evaluations = 0;
};

class Optimizer {
 public:
  virtual ~Optimizer() = default;
  virtual std::string name() const = 0;
  virtual OptimizationOutcome optimize(std::size_t dim,
                                       const ea::BatchEvaluator& evaluate,
                                       const ea::StopCondition& stop,
                                       Rng& rng) = 0;
};

/// ESS: classic fitness-driven GA; solution set = final population.
class GaOptimizer final : public Optimizer {
 public:
  explicit GaOptimizer(ea::GaConfig config = {});
  std::string name() const override { return "ESS-GA"; }
  OptimizationOutcome optimize(std::size_t dim,
                               const ea::BatchEvaluator& evaluate,
                               const ea::StopCondition& stop,
                               Rng& rng) override;

 private:
  ea::GaConfig config_;
};

/// ESSIM-DE: differential evolution. `diversity_fraction` of the returned
/// set is drawn uniformly from the population regardless of fitness (the
/// modification §II-B describes); `with_tuning` enables the restart + IQR
/// dynamic tuning operators.
class DeOptimizer final : public Optimizer {
 public:
  struct Options {
    ea::DeConfig de;
    double diversity_fraction = 0.3;
    bool with_tuning = false;
    int stagnation_window = 8;
    double stagnation_epsilon = 1e-4;
    double iqr_threshold = 1e-3;
    std::size_t restart_keep = 4;
  };
  DeOptimizer();
  explicit DeOptimizer(Options options);
  std::string name() const override {
    return options_.with_tuning ? "ESSIM-DE+tuning" : "ESSIM-DE";
  }
  OptimizationOutcome optimize(std::size_t dim,
                               const ea::BatchEvaluator& evaluate,
                               const ea::StopCondition& stop,
                               Rng& rng) override;

 private:
  Options options_;
};

/// ESS-NS: the paper's Algorithm 1; solution set = bestSet.
class NsGaOptimizer final : public Optimizer {
 public:
  explicit NsGaOptimizer(core::NsGaConfig config = {},
                         core::BehaviorDistance dist = core::fitness_distance);
  std::string name() const override { return "ESS-NS"; }
  OptimizationOutcome optimize(std::size_t dim,
                               const ea::BatchEvaluator& evaluate,
                               const ea::StopCondition& stop,
                               Rng& rng) override;

 private:
  core::NsGaConfig config_;
  core::BehaviorDistance dist_;
};

}  // namespace essns::ess
