#include "parallel/thread_pool.hpp"

#include <algorithm>

namespace essns::parallel {
namespace {

/// The pool the current thread works for, or nullptr off-pool. Lets
/// parallel_for detect re-entrant calls from its own workers: blocking on
/// futures there deadlocks a fully-busy pool (the waiting worker is exactly
/// the thread that should run them), so nested calls run inline instead.
thread_local const ThreadPool* t_worker_of = nullptr;

}  // namespace

ThreadPool::ThreadPool(unsigned threads) {
  ESSNS_REQUIRE(threads >= 1, "thread pool needs at least one thread");
  threads_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    threads_.emplace_back([this, i] {
      t_worker_of = this;
      // Label the worker's lane in any current or future trace timeline.
      obs::set_thread_name("pool-worker-" + std::to_string(i + 1));
      while (auto task = tasks_.receive()) (*task)();
    });
  }
}

ThreadPool::~ThreadPool() {
  tasks_.close();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (t_worker_of == this) {
    // Re-entrant call from one of this pool's own workers: scheduling the
    // blocks back onto the pool and blocking on their futures can deadlock
    // (every free worker may be doing the same). Run the loop inline — same
    // results, caller's thread does the work.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const std::size_t workers =
      std::min<std::size_t>(thread_count(), n);
  const std::size_t block = (n + workers - 1) / workers;

  std::vector<std::future<void>> futures;
  futures.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t begin = w * block;
    const std::size_t end = std::min(n, begin + block);
    if (begin >= end) break;
    futures.push_back(submit([&fn, begin, end] {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    }));
  }
  for (auto& f : futures) f.get();
}

}  // namespace essns::parallel
