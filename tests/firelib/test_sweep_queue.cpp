// Equivalence property tests for the sweep-queue disciplines: the bucketed
// dial/calendar queue must reproduce the retained binary-heap sweep bit for
// bit on every path (reference / uniform travel-time tables / DEM per-cell
// behavior field), over randomized scenarios, terrains, horizons and
// continuation maps — and across the whole default campaign catalog. Also
// pins the horizon-clamp contract for pre-seeded initial maps, identically
// for every queue x path combination.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "common/rng.hpp"
#include "firelib/environment.hpp"
#include "firelib/propagator.hpp"
#include "firelib/scenario.hpp"
#include "synth/catalog.hpp"

namespace essns::firelib {
namespace {

FireEnvironment uniform_env(int size) {
  return FireEnvironment(size, size, 100.0);
}

FireEnvironment fuel_mosaic_env(int size) {
  FireEnvironment env(size, size, 100.0);
  Grid<std::uint8_t> fuel(size, size, 1);
  for (int r = 0; r < size; ++r)
    for (int c = 0; c < size; ++c) {
      const int code = (r * 7 + c * 3) % 15;
      fuel(r, c) = static_cast<std::uint8_t>(code > 13 ? 0 : code);  // 0 = rock
    }
  env.set_fuel_map(std::move(fuel));
  return env;
}

FireEnvironment dem_env(int size, bool with_fuel) {
  FireEnvironment env(size, size, 100.0);
  Grid<double> slope(size, size, 0.0);
  Grid<double> aspect(size, size, 0.0);
  for (int r = 0; r < size; ++r)
    for (int c = 0; c < size; ++c) {
      slope(r, c) = (r * 13 + c * 5) % 40;
      aspect(r, c) = (r * 31 + c * 17) % 360;
    }
  env.set_topography(std::move(slope), std::move(aspect));
  if (with_fuel) {
    Grid<std::uint8_t> fuel(size, size, 1);
    for (int r = 0; r < size; ++r)
      for (int c = 0; c < size; ++c)
        fuel(r, c) = static_cast<std::uint8_t>((r + 2 * c) % 14);
    env.set_fuel_map(std::move(fuel));
  }
  return env;
}

Scenario calm_scenario() {
  Scenario s;
  s.model = 1;
  s.wind_speed = 0.0;  // symmetric spread: maximal time ties on the lattice
  s.wind_dir = 0.0;
  s.m1 = 5.0;
  s.m10 = 6.0;
  s.m100 = 8.0;
  s.mherb = 40.0;
  s.slope = 0.0;
  s.aspect = 0.0;
  return s;
}

/// Heap and dial sweeps over the same inputs must be bit-identical, on the
/// fast path and on the reference path, from point ignitions and from
/// continuation maps.
void expect_queues_match(const FireEnvironment& env) {
  const FireSpreadModel model;
  for (const bool reference : {false, true}) {
    FirePropagator heap(model);
    heap.set_sweep_queue(SweepQueue::kHeap);
    heap.set_reference_sweep(reference);
    FirePropagator dial(model);
    dial.set_sweep_queue(SweepQueue::kDial);
    dial.set_reference_sweep(reference);

    const auto& space = ScenarioSpace::table1();
    Rng rng(4242);
    PropagationWorkspace heap_ws, dial_ws;
    for (int trial = 0; trial < 20; ++trial) {
      const Scenario scenario = space.sample(rng);
      const double horizon = rng.uniform(10.0, 300.0);
      const std::vector<CellIndex> ignition{
          {static_cast<int>(rng.uniform_int(0, env.rows() - 1)),
           static_cast<int>(rng.uniform_int(0, env.cols() - 1))}};

      const IgnitionMap& from_heap =
          heap.propagate(env, scenario, ignition, horizon, heap_ws);
      const IgnitionMap& from_dial =
          dial.propagate(env, scenario, ignition, horizon, dial_ws);
      ASSERT_EQ(from_heap, from_dial)
          << (reference ? "reference" : "fast") << " trial " << trial
          << " scenario " << scenario.to_string();

      // Continue from the heap result with a fresh scenario: many finite
      // seeds at once, the dial queue's bucket-spread worst case.
      const Scenario next = space.sample(rng);
      const IgnitionMap start = from_heap;
      ASSERT_EQ(heap.propagate(env, next, start, horizon + 60.0, heap_ws),
                dial.propagate(env, next, start, horizon + 60.0, dial_ws))
          << (reference ? "reference" : "fast") << " continuation trial "
          << trial;
    }
  }
}

TEST(SweepQueueTest, DialIsDefaultAndSelectable) {
  const FireSpreadModel model;
  FirePropagator propagator(model);
  EXPECT_EQ(propagator.sweep_queue(), SweepQueue::kDial);
  propagator.set_sweep_queue(SweepQueue::kHeap);
  EXPECT_EQ(propagator.sweep_queue(), SweepQueue::kHeap);
  propagator.set_sweep_queue(SweepQueue::kDial);
  EXPECT_EQ(propagator.sweep_queue(), SweepQueue::kDial);
}

TEST(SweepQueueTest, UniformTopographyHeapMatchesDial) {
  expect_queues_match(uniform_env(32));
}

TEST(SweepQueueTest, FuelMosaicHeapMatchesDial) {
  expect_queues_match(fuel_mosaic_env(32));
}

TEST(SweepQueueTest, DemHeapMatchesDial) {
  expect_queues_match(dem_env(24, /*with_fuel=*/false));
}

TEST(SweepQueueTest, DemWithFuelMosaicHeapMatchesDial) {
  expect_queues_match(dem_env(24, /*with_fuel=*/true));
}

TEST(SweepQueueTest, TieHeavyCalmSpreadMatches) {
  // Zero wind + zero slope makes the 8-symmetric lattice produce the maximum
  // number of exactly-equal arrival times — the tie-break stress case.
  const FireSpreadModel model;
  FirePropagator heap(model);
  heap.set_sweep_queue(SweepQueue::kHeap);
  FirePropagator dial(model);
  dial.set_sweep_queue(SweepQueue::kDial);
  const FireEnvironment env = uniform_env(41);
  const Scenario s = calm_scenario();
  EXPECT_EQ(heap.propagate(env, s, {{20, 20}}, 240.0),
            dial.propagate(env, s, {{20, 20}}, 240.0));
  // Multiple simultaneous ignitions collide fronts at equal times.
  const std::vector<CellIndex> many{{0, 0}, {0, 40}, {40, 0}, {40, 40}, {20, 20}};
  EXPECT_EQ(heap.propagate(env, s, many, 240.0),
            dial.propagate(env, s, many, 240.0));
}

TEST(SweepQueueTest, DenormalHorizonMatches) {
  // A horizon so tiny that num_buckets / horizon overflows to infinity must
  // degenerate to a single bucket, not compute a NaN bucket index.
  const FireSpreadModel model;
  FirePropagator heap(model);
  heap.set_sweep_queue(SweepQueue::kHeap);
  FirePropagator dial(model);
  dial.set_sweep_queue(SweepQueue::kDial);
  const FireEnvironment env = uniform_env(16);
  const Scenario s = calm_scenario();
  const IgnitionMap from_heap = heap.propagate(env, s, {{8, 8}}, 1e-320);
  EXPECT_EQ(from_heap, dial.propagate(env, s, {{8, 8}}, 1e-320));
  EXPECT_EQ(from_heap(8, 8), 0.0);
}

TEST(SweepQueueTest, ZeroHorizonMatches) {
  const FireSpreadModel model;
  FirePropagator heap(model);
  heap.set_sweep_queue(SweepQueue::kHeap);
  FirePropagator dial(model);
  dial.set_sweep_queue(SweepQueue::kDial);
  const FireEnvironment env = uniform_env(16);
  Scenario s;
  s.model = 4;
  s.wind_speed = 8.0;
  const IgnitionMap from_heap = heap.propagate(env, s, {{8, 8}}, 0.0);
  EXPECT_EQ(from_heap, dial.propagate(env, s, {{8, 8}}, 0.0));
  EXPECT_EQ(from_heap(8, 8), 0.0);
}

TEST(SweepQueueTest, DefaultCampaignCatalogIsBitIdentical) {
  // Acceptance sweep: every workload of the default campaign catalog,
  // heap vs dial on the shipping fast path.
  const std::vector<synth::Workload> catalog =
      synth::generate_catalog(synth::CatalogSpec{});
  ASSERT_FALSE(catalog.empty());

  const FireSpreadModel model;
  FirePropagator heap(model);
  heap.set_sweep_queue(SweepQueue::kHeap);
  FirePropagator dial(model);
  dial.set_sweep_queue(SweepQueue::kDial);

  const auto& space = ScenarioSpace::table1();
  Rng rng(2022);
  PropagationWorkspace heap_ws, dial_ws;
  for (const synth::Workload& workload : catalog) {
    const FireEnvironment& env = workload.environment;
    const std::vector<CellIndex> ignition{{env.rows() / 2, env.cols() / 2}};
    for (int trial = 0; trial < 3; ++trial) {
      const Scenario scenario = space.sample(rng);
      const double horizon = rng.uniform(30.0, 180.0);
      ASSERT_EQ(heap.propagate(env, scenario, ignition, horizon, heap_ws),
                dial.propagate(env, scenario, ignition, horizon, dial_ws))
          << workload.name << " trial " << trial;
    }
  }
}

// ---------------------------------------------------------------------------
// Horizon-clamp contract for pre-seeded initial maps: finite initial times
// greater than the horizon are erased to kNeverIgnited in the output; times
// at or below the horizon are kept (and spread). Pinned identically for
// heap and dial sweeps, reference and fast paths.
// ---------------------------------------------------------------------------

using QueueAndPath = std::tuple<SweepQueue, bool>;

class HorizonClampTest : public ::testing::TestWithParam<QueueAndPath> {};

std::string queue_and_path_name(
    const ::testing::TestParamInfo<QueueAndPath>& info) {
  const SweepQueue queue = std::get<0>(info.param);
  const bool reference = std::get<1>(info.param);
  return std::string(queue == SweepQueue::kHeap ? "Heap" : "Dial") +
         (reference ? "Reference" : "Fast");
}

TEST_P(HorizonClampTest, InitialTimesBeyondHorizonAreErased) {
  const auto [queue, reference] = GetParam();
  const FireSpreadModel model;
  FirePropagator propagator(model);
  propagator.set_sweep_queue(queue);
  propagator.set_reference_sweep(reference);

  for (const bool dem : {false, true}) {
    const FireEnvironment env =
        dem ? dem_env(16, /*with_fuel=*/false) : uniform_env(16);
    IgnitionMap initial(16, 16, kNeverIgnited);
    initial(2, 2) = 0.0;     // active source, spreads
    initial(8, 8) = 100.0;   // exactly at the horizon: kept
    initial(12, 12) = 100.5; // beyond the horizon: erased
    initial(14, 14) = 5000.0;  // far beyond: erased

    Scenario s = calm_scenario();
    const IgnitionMap out = propagator.propagate(env, s, initial, 100.0);

    EXPECT_EQ(out(2, 2), 0.0);
    EXPECT_EQ(out(8, 8), 100.0);
    EXPECT_EQ(out(12, 12), kNeverIgnited) << "dem=" << dem;
    EXPECT_EQ(out(14, 14), kNeverIgnited) << "dem=" << dem;
    // The active source did spread somewhere within the horizon.
    EXPECT_GT(burned_count(out, 100.0), 1u);
    // Nothing in the output exceeds the horizon.
    for (const double time : out)
      EXPECT_TRUE(time <= 100.0 || time == kNeverIgnited);
  }
}

TEST_P(HorizonClampTest, AllSeedsBeyondHorizonYieldEmptyMap) {
  const auto [queue, reference] = GetParam();
  const FireSpreadModel model;
  FirePropagator propagator(model);
  propagator.set_sweep_queue(queue);
  propagator.set_reference_sweep(reference);

  const FireEnvironment env = uniform_env(8);
  IgnitionMap initial(8, 8, kNeverIgnited);
  initial(4, 4) = 61.0;
  const IgnitionMap out =
      propagator.propagate(env, calm_scenario(), initial, 60.0);
  for (const double time : out) EXPECT_EQ(time, kNeverIgnited);
}

INSTANTIATE_TEST_SUITE_P(
    QueuesAndPaths, HorizonClampTest,
    ::testing::Combine(::testing::Values(SweepQueue::kHeap, SweepQueue::kDial),
                       ::testing::Bool()),
    queue_and_path_name);

}  // namespace
}  // namespace essns::firelib
