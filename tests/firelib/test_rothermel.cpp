#include "firelib/rothermel.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/units.hpp"

namespace essns::firelib {
namespace {

MoistureSet dry() { return {0.06, 0.08, 0.10, 0.60, 0.90}; }

class RothermelAllModels : public ::testing::TestWithParam<int> {};

TEST_P(RothermelAllModels, NoWindNoSlopeSpreadIsPositiveForDryFuel) {
  const FireSpreadModel model;
  const FireBehavior b = model.behavior(GetParam(), dry(), {});
  EXPECT_GT(b.spread_rate_no_wind, 0.0) << "model " << GetParam();
  EXPECT_GT(b.reaction_intensity, 0.0);
  EXPECT_DOUBLE_EQ(b.spread_rate_max, b.spread_rate_no_wind);
  EXPECT_DOUBLE_EQ(b.eccentricity, 0.0);
}

TEST_P(RothermelAllModels, WindIncreasesSpread) {
  const FireSpreadModel model;
  const FireBehavior calm = model.behavior(GetParam(), dry(), {});
  WindSlope windy{units::mph_to_ft_per_min(10.0), 0.0, 0.0, 0.0};
  const FireBehavior blown = model.behavior(GetParam(), dry(), windy);
  EXPECT_GT(blown.spread_rate_max, calm.spread_rate_max);
  EXPECT_GT(blown.eccentricity, 0.0);
  EXPECT_LT(blown.eccentricity, 1.0);
}

TEST_P(RothermelAllModels, WindSpeedMonotonicity) {
  const FireSpreadModel model;
  double previous = 0.0;
  for (double mph = 0.0; mph <= 30.0; mph += 5.0) {
    WindSlope ws{units::mph_to_ft_per_min(mph), 90.0, 0.0, 0.0};
    const FireBehavior b = model.behavior(GetParam(), dry(), ws);
    EXPECT_GE(b.spread_rate_max, previous)
        << "model " << GetParam() << " at " << mph << " mph";
    previous = b.spread_rate_max;
  }
}

TEST_P(RothermelAllModels, MoistureDampensSpread) {
  const FireSpreadModel model;
  MoistureSet wetter = dry();
  wetter.m1 = 0.12;
  wetter.m10 = 0.14;
  wetter.m100 = 0.16;
  const FireBehavior dry_b = model.behavior(GetParam(), dry(), {});
  const FireBehavior wet_b = model.behavior(GetParam(), wetter, {});
  EXPECT_LE(wet_b.spread_rate_no_wind, dry_b.spread_rate_no_wind);
}

TEST_P(RothermelAllModels, SaturatedDeadFuelDoesNotSpread) {
  const FireSpreadModel model;
  // Above every model's dead extinction moisture (max 40%).
  MoistureSet soaked{0.5, 0.5, 0.5, 3.0, 3.0};
  const FireBehavior b = model.behavior(GetParam(), soaked, {});
  EXPECT_DOUBLE_EQ(b.spread_rate_max, 0.0);
}

TEST_P(RothermelAllModels, SlopeIncreasesSpreadUpslope) {
  const FireSpreadModel model;
  const FireBehavior flat = model.behavior(GetParam(), dry(), {});
  WindSlope sloped{0.0, 0.0, units::slope_degrees_to_ratio(30.0), 0.0};
  const FireBehavior hill = model.behavior(GetParam(), dry(), sloped);
  EXPECT_GT(hill.spread_rate_max, flat.spread_rate_max);
  EXPECT_DOUBLE_EQ(hill.azimuth_max, 0.0);  // upslope azimuth
}

INSTANTIATE_TEST_SUITE_P(AllStandardModels, RothermelAllModels,
                         ::testing::Range(1, 14));

TEST(RothermelTest, UnburnableModelZero) {
  const FireSpreadModel model;
  const FireBehavior b = model.behavior(0, dry(), {});
  EXPECT_DOUBLE_EQ(b.spread_rate_max, 0.0);
  EXPECT_DOUBLE_EQ(b.reaction_intensity, 0.0);
}

TEST(RothermelTest, MaxSpreadFollowsWindDirection) {
  const FireSpreadModel model;
  for (double dir : {0.0, 45.0, 90.0, 180.0, 270.0, 315.0}) {
    WindSlope ws{units::mph_to_ft_per_min(8.0), dir, 0.0, 0.0};
    const FireBehavior b = model.behavior(1, dry(), ws);
    EXPECT_NEAR(b.azimuth_max, dir, 1e-6);
  }
}

TEST(RothermelTest, WindAndSlopeCombineVectorially) {
  const FireSpreadModel model;
  // Wind east (90), upslope north (0): max spread azimuth lies between.
  WindSlope ws{units::mph_to_ft_per_min(6.0), 90.0,
               units::slope_degrees_to_ratio(20.0), 0.0};
  const FireBehavior b = model.behavior(1, dry(), ws);
  EXPECT_GT(b.azimuth_max, 0.0);
  EXPECT_LT(b.azimuth_max, 90.0);
}

TEST(RothermelTest, SpreadRateAtAzimuthPeaksAtMaxDirection) {
  const FireSpreadModel model;
  WindSlope ws{units::mph_to_ft_per_min(12.0), 90.0, 0.0, 0.0};
  const FireBehavior b = model.behavior(1, dry(), ws);
  const double peak = b.spread_rate_at(b.azimuth_max);
  EXPECT_NEAR(peak, b.spread_rate_max, 1e-9);
  for (double az = 0.0; az < 360.0; az += 15.0)
    EXPECT_LE(b.spread_rate_at(az), peak + 1e-9);
}

TEST(RothermelTest, BackingSpreadIsSlowestAndPositive) {
  const FireSpreadModel model;
  WindSlope ws{units::mph_to_ft_per_min(12.0), 0.0, 0.0, 0.0};
  const FireBehavior b = model.behavior(1, dry(), ws);
  const double backing = b.spread_rate_at(180.0);
  EXPECT_GT(backing, 0.0);
  for (double az = 0.0; az < 360.0; az += 15.0)
    EXPECT_GE(b.spread_rate_at(az), backing - 1e-9);
}

TEST(RothermelTest, EllipseIsSymmetricAroundMaxAxis) {
  const FireSpreadModel model;
  WindSlope ws{units::mph_to_ft_per_min(9.0), 45.0, 0.0, 0.0};
  const FireBehavior b = model.behavior(3, dry(), ws);
  for (double off : {30.0, 60.0, 90.0, 120.0}) {
    EXPECT_NEAR(b.spread_rate_at(45.0 + off), b.spread_rate_at(45.0 - off),
                1e-9);
  }
}

TEST(RothermelTest, GrassFasterThanTimberLitter) {
  // Model 1 (short grass) spreads much faster than model 8 (closed timber
  // litter) under identical conditions — the defining contrast of the NFFL
  // set.
  const FireSpreadModel model;
  WindSlope ws{units::mph_to_ft_per_min(5.0), 0.0, 0.0, 0.0};
  const FireBehavior grass = model.behavior(1, dry(), ws);
  const FireBehavior litter = model.behavior(8, dry(), ws);
  EXPECT_GT(grass.spread_rate_max, 5.0 * litter.spread_rate_max);
}

TEST(RothermelTest, ReasonableMagnitudeForGrass) {
  // Model 1, 5% moisture, 5 mph midflame wind: BEHAVE-family tools report
  // roughly 50-120 ft/min. Accept a generous band — we validate magnitude,
  // not decimals.
  const FireSpreadModel model;
  MoistureSet m{0.05, 0.06, 0.07, 0.6, 0.9};
  WindSlope ws{units::mph_to_ft_per_min(5.0), 0.0, 0.0, 0.0};
  const FireBehavior b = model.behavior(1, m, ws);
  EXPECT_GT(b.spread_rate_max, 20.0);
  EXPECT_LT(b.spread_rate_max, 300.0);
}

TEST(RothermelTest, HeatPerUnitAreaPositiveAndScalesWithLoad) {
  const FireSpreadModel model;
  const FireBehavior light = model.behavior(1, dry(), {});
  const FireBehavior heavy = model.behavior(13, dry(), {});
  EXPECT_GT(light.heat_per_unit_area, 0.0);
  EXPECT_GT(heavy.heat_per_unit_area, light.heat_per_unit_area);
}

TEST(RothermelTest, WindLimitCapsExtremWind) {
  const FireSpreadModel model;
  // Hurricane wind over modest fuel triggers Rothermel's 0.9*I_R cap.
  WindSlope ws{units::mph_to_ft_per_min(80.0), 0.0, 0.0, 0.0};
  const FireBehavior b = model.behavior(8, dry(), ws);
  EXPECT_TRUE(b.wind_limit_hit);
  EXPECT_LE(b.effective_wind_fpm, 0.9 * b.reaction_intensity + 1e-6);
}

TEST(RothermelTest, RejectsNegativeInputs) {
  const FireSpreadModel model;
  MoistureSet bad = dry();
  bad.m1 = -0.1;
  EXPECT_THROW(model.behavior(1, bad, {}), InvalidArgument);
  WindSlope neg_wind{-1.0, 0.0, 0.0, 0.0};
  EXPECT_THROW(model.behavior(1, dry(), neg_wind), InvalidArgument);
  WindSlope neg_slope{0.0, 0.0, -0.5, 0.0};
  EXPECT_THROW(model.behavior(1, dry(), neg_slope), InvalidArgument);
  EXPECT_THROW(model.behavior(99, dry(), {}), InvalidArgument);
}

TEST(RothermelTest, FuelBedIntermediatesSanity) {
  const FuelBedIntermediates bed =
      compute_fuel_bed(FuelCatalog::standard().model(1));
  EXPECT_TRUE(bed.burnable);
  EXPECT_NEAR(bed.sigma, 3500.0, 1e-9);  // single-particle model
  EXPECT_GT(bed.packing_ratio, 0.0);
  EXPECT_LT(bed.packing_ratio, 0.1);
  EXPECT_GT(bed.xi, 0.0);
  EXPECT_LT(bed.xi, 1.0);
  EXPECT_GT(bed.gamma, 0.0);
}

TEST(RothermelTest, LiveFuelMoistureMattersForChaparral) {
  const FireSpreadModel model;
  MoistureSet dry_live = dry();
  MoistureSet wet_live = dry();
  wet_live.mwood = 3.0;  // 300% live moisture
  dry_live.mwood = 0.5;
  const FireBehavior dry_b = model.behavior(4, dry_live, {});
  const FireBehavior wet_b = model.behavior(4, wet_live, {});
  EXPECT_GT(dry_b.reaction_intensity, wet_b.reaction_intensity);
}

}  // namespace
}  // namespace essns::firelib
