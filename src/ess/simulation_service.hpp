// SimulationService: the batched, pool-backed simulation engine shared by
// every pipeline stage.
//
// The paper parallelizes only the Optimization Stage ("parallelism will only
// be implemented in the evaluation of the scenarios", §III-B) and leaves the
// Statistical and Prediction stages serial. This service supersedes that
// scoping: one persistent Master/Worker pool (Fig. 1/3) serves fitness
// batches for the OS *and* map batches for the SS/PS, so every stage that
// simulates scales with the worker count. Each worker owns a
// firelib::PropagationWorkspace, so steady-state simulations run without
// per-call allocations regardless of which stage issued them.
//
// Determinism contract: requests are scattered by index and results gathered
// in request order, and each simulation is a deterministic function of its
// inputs — so results are bit-identical across worker counts (workers == 1
// runs inline on the calling thread).
#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "firelib/environment.hpp"
#include "firelib/propagator.hpp"
#include "parallel/master_worker.hpp"

namespace essns::ess {

/// One simulation over an interval, optionally scored against a target map.
struct SimulationRequest {
  const firelib::Scenario* scenario = nullptr;
  const firelib::IgnitionMap* start = nullptr;  ///< fire state at start_time
  double start_time = 0.0;
  double end_time = 0.0;
  /// When set, the result carries fitness = Eq. (3) vs this map (cells
  /// burned in `target` by start_time are excluded as preburned).
  const firelib::IgnitionMap* target = nullptr;
  /// When false, the simulated map is dropped after scoring (fitness-only
  /// requests avoid one map copy per simulation).
  bool keep_map = true;
};

struct SimulationResult {
  firelib::IgnitionMap map;  ///< empty when the request had keep_map = false
  double fitness = 0.0;      ///< 0 when the request had no target
};

class SimulationService {
 public:
  /// workers == 1: every call runs inline on the calling thread.
  /// workers > 1: a persistent Master/Worker pool serves all batches.
  explicit SimulationService(const firelib::FireEnvironment& env,
                             unsigned workers = 1);
  ~SimulationService();

  SimulationService(const SimulationService&) = delete;
  SimulationService& operator=(const SimulationService&) = delete;

  unsigned workers() const;
  std::size_t simulations_run() const { return simulations_.load(); }

  /// One simulation on the calling thread (master workspace).
  firelib::IgnitionMap simulate(const firelib::Scenario& scenario,
                                const firelib::IgnitionMap& start,
                                double end_time);

  /// Scatter `requests` over the pool, gather results in request order.
  std::vector<SimulationResult> run_batch(
      const std::vector<SimulationRequest>& requests);

  /// Map batch: simulate every scenario over [*, end_time] from `start`.
  /// Equivalent to N simulate() calls, bit for bit, at any worker count.
  std::vector<firelib::IgnitionMap> simulate_batch(
      const std::vector<firelib::Scenario>& scenarios,
      const firelib::IgnitionMap& start, double end_time);

  /// Fitness batch: Eq. (3) of each scenario's simulated map at end_time
  /// against `target`, excluding cells burned in `target` by start_time.
  std::vector<double> fitness_batch(
      const std::vector<firelib::Scenario>& scenarios,
      const firelib::IgnitionMap& start, const firelib::IgnitionMap& target,
      double start_time, double end_time);

 private:
  SimulationResult run_one(unsigned worker_id, const SimulationRequest& req);

  const firelib::FireEnvironment* env_;
  firelib::FireSpreadModel spread_model_;
  firelib::FirePropagator propagator_;
  /// workspaces_[0] belongs to the calling thread; pool worker `id` uses
  /// workspaces_[id + 1].
  std::vector<firelib::PropagationWorkspace> workspaces_;
  mutable std::atomic<std::size_t> simulations_{0};
  std::unique_ptr<parallel::MasterWorker<const SimulationRequest*,
                                         SimulationResult>>
      pool_;
};

}  // namespace essns::ess
