// The archive of novel solutions (§II-C) and the bestSet of Algorithm 1.
//
// The paper's baseline uses a fixed-size archive "managed with replacement
// based on novelty only" (§III-B). Its future-work section (§IV) anticipates
// randomized replacement (as in Doncieux et al. 2020), a novelty threshold
// for admission (Lehman & Stanley 2008), and dynamically-sized archives; all
// four policies are implemented here and compared in EXP-A.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "ea/individual.hpp"

namespace essns::core {

enum class ArchivePolicy {
  kNoveltyRanked,      ///< paper baseline: keep the most novel (fixed capacity)
  kRandom,             ///< random replacement once full (Doncieux et al.)
  kThreshold,          ///< admit only novelty > threshold; evict oldest when full
  kUnbounded,          ///< keep everything (dynamic size; memory grows)
  kAdaptiveThreshold,  ///< threshold self-tunes toward a target admission
                       ///< rate (Lehman & Stanley's dynamic rho_min)
};

struct ArchiveConfig {
  ArchivePolicy policy = ArchivePolicy::kNoveltyRanked;
  std::size_t capacity = 64;        ///< ignored by kUnbounded
  double novelty_threshold = 0.0;   ///< used by kThreshold / initial adaptive

  // kAdaptiveThreshold tuning: after every `adapt_window` candidates, the
  // threshold is raised by `adapt_up` when more than a quarter were admitted
  // and lowered by `adapt_down` when none were.
  std::size_t adapt_window = 32;
  double adapt_up = 1.2;
  double adapt_down = 0.95;
};

/// Archive of novel solutions. Stores copies of individuals with the novelty
/// value they had when archived.
class NoveltyArchive {
 public:
  explicit NoveltyArchive(ArchiveConfig config = {}, std::uint64_t seed = 7);

  /// Algorithm 1 line 15: updateArchive(archive, offspring). Individuals must
  /// have their novelty already evaluated.
  void update(std::span<const ea::Individual> offspring);

  const std::vector<ea::Individual>& items() const { return items_; }
  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  const ArchiveConfig& config() const { return config_; }

  /// Smallest archived novelty (the replacement frontier); 0 when empty.
  double min_novelty() const;

  /// Current admission threshold (meaningful for the threshold policies;
  /// tracks the adapted value under kAdaptiveThreshold).
  double current_threshold() const { return threshold_; }

 private:
  void insert_novelty_ranked(const ea::Individual& ind);
  void insert_random(const ea::Individual& ind);
  bool insert_threshold(const ea::Individual& ind);
  void adapt_after_candidate(bool admitted);

  ArchiveConfig config_;
  std::vector<ea::Individual> items_;
  Rng rng_;
  double threshold_ = 0.0;
  std::size_t window_candidates_ = 0;
  std::size_t window_admissions_ = 0;
};

/// bestSet: the collection of highest-fitness individuals accumulated over
/// the entire search — the *output* of ESS-NS (replaces the evolved
/// population used by ESS/ESSIM). Fixed capacity, lowest-fitness evicted.
class BestSet {
 public:
  explicit BestSet(std::size_t capacity = 32);

  /// Algorithm 1 line 17: updateBest(bestSet, offspring). Accepts any
  /// evaluated individuals; keeps the `capacity` best by fitness. Exact
  /// duplicates (same genome) update in place rather than occupying two slots.
  void update(std::span<const ea::Individual> candidates);

  const std::vector<ea::Individual>& items() const { return items_; }
  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  std::size_t capacity() const { return capacity_; }

  /// Algorithm 1 line 18: getMaxFitness(bestSet); -inf when empty.
  double max_fitness() const;

  /// Lowest fitness currently retained; -inf when empty.
  double min_fitness() const;

 private:
  std::size_t capacity_;
  std::vector<ea::Individual> items_;  // kept sorted by descending fitness
};

}  // namespace essns::core
