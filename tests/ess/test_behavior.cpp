#include "ess/behavior.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/novelty.hpp"
#include "synth/workloads.hpp"

namespace essns::ess {
namespace {

class BurnDescriptorTest : public ::testing::Test {
 protected:
  BurnDescriptorTest() : workload_(synth::make_plains(32)) {
    Rng rng(5);
    truth_ = synth::generate_ground_truth(workload_.environment,
                                          workload_.truth_config, rng);
  }

  synth::Workload workload_;
  synth::GroundTruth truth_;
};

TEST_F(BurnDescriptorTest, ThreeNormalizedFeatures) {
  ScenarioEvaluator evaluator(workload_.environment);
  const auto map = evaluator.simulate(truth_.scenario_at[1],
                                      truth_.fire_lines[0],
                                      truth_.step_minutes);
  const auto descriptor =
      burn_descriptor(map, truth_.step_minutes, truth_.fire_lines[0], 0.0);
  ASSERT_EQ(descriptor.size(), 3u);
  EXPECT_GT(descriptor[0], 0.0);   // something burned
  EXPECT_LT(descriptor[0], 1.0);   // not everything
  EXPECT_GE(descriptor[1], -1.0);
  EXPECT_LE(descriptor[1], 1.0);
  EXPECT_GE(descriptor[2], -1.0);
  EXPECT_LE(descriptor[2], 1.0);
}

TEST_F(BurnDescriptorTest, WindDirectionSeparatesScenarios) {
  // Same burned area, opposite push direction: Eq. (2) distance ~0, burn
  // descriptor distance large — the motivating case for richer behaviours.
  ScenarioEvaluator evaluator(workload_.environment);
  firelib::Scenario east = truth_.scenario_at[1];
  east.wind_speed = 20.0;
  east.wind_dir = 90.0;
  firelib::Scenario west = east;
  west.wind_dir = 270.0;

  const auto east_map =
      evaluator.simulate(east, truth_.fire_lines[0], truth_.step_minutes);
  const auto west_map =
      evaluator.simulate(west, truth_.fire_lines[0], truth_.step_minutes);
  const auto east_d =
      burn_descriptor(east_map, truth_.step_minutes, truth_.fire_lines[0], 0.0);
  const auto west_d =
      burn_descriptor(west_map, truth_.step_minutes, truth_.fire_lines[0], 0.0);

  // Burned fractions are close (symmetric terrain)...
  EXPECT_NEAR(east_d[0], west_d[0], 0.05);
  // ...but the centroid columns moved in opposite directions.
  EXPECT_GT(east_d[2], 0.02);
  EXPECT_LT(west_d[2], -0.02);
}

TEST_F(BurnDescriptorTest, EmptyFireCentroidFallsBackToMapCenter) {
  firelib::IgnitionMap nothing(8, 8, firelib::kNeverIgnited);
  const auto d = burn_descriptor(nothing, 10.0, nothing, 0.0);
  EXPECT_DOUBLE_EQ(d[0], 0.0);
  EXPECT_DOUBLE_EQ(d[1], 0.0);
  EXPECT_DOUBLE_EQ(d[2], 0.0);
}

TEST_F(BurnDescriptorTest, DimensionMismatchThrows) {
  firelib::IgnitionMap a(4, 4, firelib::kNeverIgnited);
  firelib::IgnitionMap b(5, 5, firelib::kNeverIgnited);
  EXPECT_THROW(burn_descriptor(a, 1.0, b, 0.0), InvalidArgument);
}

TEST_F(BurnDescriptorTest, DescriptorFnDrivesNsGa) {
  ScenarioEvaluator evaluator(workload_.environment);
  evaluator.set_step({&truth_.fire_lines[0], &truth_.fire_lines[1], 0.0,
                      truth_.step_minutes});
  core::NsGaConfig cfg;
  cfg.population_size = 8;
  cfg.offspring_count = 8;
  cfg.descriptor = make_burn_descriptor_fn(evaluator, truth_.fire_lines[0],
                                           0.0, truth_.step_minutes);
  Rng rng(3);
  const auto result = core::run_ns_ga(
      cfg, firelib::kParamCount, evaluator.batch_evaluator(), {4, 0.99}, rng,
      core::descriptor_distance);
  EXPECT_FALSE(result.best_set.empty());
  for (const auto& ind : result.population)
    EXPECT_EQ(ind.descriptor.size(), 3u);
}

TEST_F(BurnDescriptorTest, DescriptorDistanceRequiresDescriptors) {
  ea::Individual a, b;
  a.genome = b.genome = {0.5};
  a.fitness = b.fitness = 0.5;
  EXPECT_THROW(core::descriptor_distance(a, b), InvalidArgument);
  a.descriptor = {0.1, 0.2};
  b.descriptor = {0.4, 0.6};
  EXPECT_NEAR(core::descriptor_distance(a, b), 0.5, 1e-12);
}

TEST_F(BurnDescriptorTest, FnValidatesInterval) {
  ScenarioEvaluator evaluator(workload_.environment);
  EXPECT_THROW(
      make_burn_descriptor_fn(evaluator, truth_.fire_lines[0], 10.0, 10.0),
      InvalidArgument);
}

}  // namespace
}  // namespace essns::ess
