#include "metrics/diversity.hpp"

#include <gtest/gtest.h>

#include "ea/ga.hpp"
#include "ea/landscapes.hpp"

namespace essns::metrics {
namespace {

ea::Population make_pop(std::initializer_list<std::pair<double, double>> rows) {
  // Each pair: (gene value replicated twice, fitness).
  ea::Population pop;
  for (const auto& [gene, fitness] : rows) {
    ea::Individual ind;
    ind.genome = {gene, gene};
    ind.fitness = fitness;
    pop.push_back(ind);
  }
  return pop;
}

TEST(GenotypicDiversityTest, ZeroForIdenticalPopulation) {
  const auto pop = make_pop({{0.5, 0.1}, {0.5, 0.2}, {0.5, 0.3}});
  EXPECT_DOUBLE_EQ(genotypic_diversity(pop), 0.0);
}

TEST(GenotypicDiversityTest, ZeroForSingleton) {
  const auto pop = make_pop({{0.5, 0.1}});
  EXPECT_DOUBLE_EQ(genotypic_diversity(pop), 0.0);
}

TEST(GenotypicDiversityTest, HandComputedPair) {
  // Genomes {0,0} and {1,1}: distance sqrt(2).
  const auto pop = make_pop({{0.0, 0.1}, {1.0, 0.2}});
  EXPECT_NEAR(genotypic_diversity(pop), std::sqrt(2.0), 1e-12);
}

TEST(GenotypicDiversityTest, SpreadPopulationScoresHigher) {
  const auto tight = make_pop({{0.4, 0}, {0.45, 0}, {0.5, 0}});
  const auto wide = make_pop({{0.0, 0}, {0.5, 0}, {1.0, 0}});
  EXPECT_GT(genotypic_diversity(wide), genotypic_diversity(tight));
}

TEST(FitnessIqrTest, MatchesStatisticsIqr) {
  const auto pop =
      make_pop({{0, 1.0}, {0, 2.0}, {0, 3.0}, {0, 4.0}, {0, 5.0}});
  EXPECT_DOUBLE_EQ(fitness_iqr(pop), 2.0);  // Q3=4, Q1=2
}

TEST(FitnessIqrTest, SmallPopulationReturnsZero) {
  EXPECT_DOUBLE_EQ(fitness_iqr(make_pop({{0, 1.0}, {0, 5.0}})), 0.0);
}

TEST(FitnessIqrTest, IgnoresUnevaluated) {
  auto pop = make_pop({{0, 1.0}, {0, 2.0}, {0, 3.0}, {0, 4.0}});
  ea::Individual raw;
  raw.genome = {0.5, 0.5};
  pop.push_back(raw);  // NaN fitness must not poison the quartiles
  EXPECT_GT(fitness_iqr(pop), 0.0);
}

TEST(FitnessStddevTest, ZeroForConstant) {
  EXPECT_DOUBLE_EQ(fitness_stddev(make_pop({{0, 2.0}, {0, 2.0}, {0, 2.0}})),
                   0.0);
}

TEST(FitnessStddevTest, KnownValue) {
  EXPECT_NEAR(fitness_stddev(make_pop({{0, 1.0}, {0, 3.0}})), std::sqrt(2.0),
              1e-12);
}

TEST(CentroidSpreadTest, ZeroForIdentical) {
  EXPECT_DOUBLE_EQ(centroid_spread(make_pop({{0.3, 0}, {0.3, 0}})), 0.0);
}

TEST(CentroidSpreadTest, SymmetricPair) {
  // Genomes {0,0} and {1,1}: centroid {0.5,0.5}, each at distance sqrt(0.5).
  const auto pop = make_pop({{0.0, 0}, {1.0, 0}});
  EXPECT_NEAR(centroid_spread(pop), std::sqrt(0.5), 1e-12);
}

TEST(TrajectoryRecorderTest, CapturesPerGenerationRows) {
  TrajectoryRecorder recorder;
  Rng rng(1);
  ea::GaConfig cfg;
  cfg.population_size = 10;
  cfg.offspring_count = 10;
  ea::run_ga(cfg, 3, ea::landscapes::batch(ea::landscapes::sphere), {6, 2.0},
             rng, recorder.observer());
  ASSERT_EQ(recorder.rows().size(), 7u);  // generations 0..6
  for (std::size_t i = 0; i < recorder.rows().size(); ++i) {
    const auto& row = recorder.rows()[i];
    EXPECT_EQ(row.generation, static_cast<int>(i));
    EXPECT_GE(row.best_fitness, row.mean_fitness);
    EXPECT_GE(row.diversity, 0.0);
  }
}

TEST(TrajectoryRecorderTest, CollapseGenerationDetectsConvergence) {
  TrajectoryRecorder recorder;
  const auto observer = recorder.observer();
  // Synthetic trajectory: diversity 1.0 then 0.05 at generation 3.
  auto pop_with_spread = [](double spread) {
    ea::Population pop;
    for (int i = 0; i < 4; ++i) {
      ea::Individual ind;
      ind.genome = {0.5 + spread * i};
      ind.fitness = 0.5;
      pop.push_back(ind);
    }
    return pop;
  };
  observer(0, pop_with_spread(0.3));
  observer(1, pop_with_spread(0.2));
  observer(2, pop_with_spread(0.1));
  observer(3, pop_with_spread(0.001));
  EXPECT_EQ(recorder.collapse_generation(0.1), 3);
}

TEST(TrajectoryRecorderTest, NoCollapseReturnsMinusOne) {
  TrajectoryRecorder recorder;
  const auto observer = recorder.observer();
  ea::Population pop(3);
  for (int i = 0; i < 3; ++i) {
    pop[static_cast<size_t>(i)].genome = {0.2 * i};
    pop[static_cast<size_t>(i)].fitness = 0.1;
  }
  observer(0, pop);
  observer(1, pop);
  EXPECT_EQ(recorder.collapse_generation(0.5), -1);
  recorder.clear();
  EXPECT_TRUE(recorder.rows().empty());
  EXPECT_EQ(recorder.collapse_generation(), -1);
}

}  // namespace
}  // namespace essns::metrics
