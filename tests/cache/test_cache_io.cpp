#include "cache/cache_io.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/binary_io.hpp"
#include "common/error.hpp"
#include "service/campaign.hpp"
#include "synth/catalog.hpp"

namespace essns::cache {
namespace {

/// Synthetic but structurally complete entries: distinct keys, a map on
/// most of them, a mix of fitness-record counts, distinct costs.
void fill_cache(SharedScenarioCache& cache, std::size_t entries,
                int map_edge = 4) {
  for (std::size_t i = 0; i < entries; ++i) {
    ScenarioKey key;
    key.context = 0x1000 + i;
    for (std::size_t p = 0; p < key.params.size(); ++p)
      key.params[p] = i * 131 + p;

    CachedScenario value;
    if (i % 4 != 3) {  // leave some entries fitness-only
      firelib::IgnitionMap map(map_edge, map_edge);
      double cell = static_cast<double>(i);
      for (double& c : map) c = (cell += 0.25);
      value.map = std::move(map);
    }
    for (std::size_t f = 0; f < i % 3; ++f) {
      FitnessRecord record;
      record.target_fingerprint = 0xbeef00 + i;
      record.start_time_bits = f;
      record.fitness = 0.5 + static_cast<double>(f);
      value.fitnesses.push_back(record);
    }
    cache.insert(key, std::move(value), 0.001 * static_cast<double>(i + 1));
  }
}

std::string serialize(const SharedScenarioCache& cache) {
  std::ostringstream out(std::ios::binary);
  save_cache(cache, out);
  return out.str();
}

RestoreStats deserialize(SharedScenarioCache& cache, const std::string& bytes) {
  std::istringstream in(bytes, std::ios::binary);
  return load_cache(cache, in);
}

TEST(CacheIo, RoundTripIsByteExact) {
  SharedScenarioCache original(8 << 20);
  fill_cache(original, 13);
  const std::string snapshot = serialize(original);

  SharedScenarioCache restored(8 << 20);
  const RestoreStats stats = deserialize(restored, snapshot);
  EXPECT_EQ(stats.entries_in_file, 13u);
  EXPECT_EQ(stats.restored, 13u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(restored.stats().entries, original.stats().entries);
  EXPECT_EQ(restored.stats().bytes, original.stats().bytes);

  // Strongest equality: re-serializing the restored cache reproduces the
  // snapshot byte for byte (same shard assignment, same recency order, same
  // map cells, costs and fitness records).
  EXPECT_EQ(serialize(restored), snapshot);
}

TEST(CacheIo, EmptyCacheRoundTrips) {
  SharedScenarioCache original(1 << 20);
  const std::string snapshot = serialize(original);
  SharedScenarioCache restored(1 << 20);
  const RestoreStats stats = deserialize(restored, snapshot);
  EXPECT_EQ(stats.entries_in_file, 0u);
  EXPECT_EQ(restored.stats().entries, 0u);
}

TEST(CacheIo, RestoreReAccountsAgainstSmallerBudget) {
  SharedScenarioCache big(64 << 20);
  fill_cache(big, 64, /*map_edge=*/48);  // ~18 KiB per map entry
  const std::size_t saved_entries = big.stats().entries;
  ASSERT_EQ(saved_entries, 64u);
  const std::string snapshot = serialize(big);

  // A budget far below the snapshot's total bytes: restore must evict or
  // reject down to the smaller budget, never exceed it.
  const std::size_t small_budget = big.stats().bytes / 4;
  SharedScenarioCache small(small_budget);
  const RestoreStats stats = deserialize(small, snapshot);
  EXPECT_EQ(stats.entries_in_file, saved_entries);
  EXPECT_EQ(stats.restored + stats.rejected, saved_entries);
  EXPECT_GT(stats.evictions + stats.rejected, 0u)
      << "a 4x smaller budget must push something out";
  EXPECT_LE(small.stats().bytes, small_budget);
  EXPECT_LT(small.stats().entries, saved_entries);
}

TEST(CacheIo, EveryTruncationIsRejected) {
  SharedScenarioCache original(1 << 20);
  fill_cache(original, 3);
  const std::string snapshot = serialize(original);
  ASSERT_GT(snapshot.size(), 8u);

  for (std::size_t len = 0; len < snapshot.size(); ++len) {
    SharedScenarioCache target(1 << 20);
    EXPECT_THROW(deserialize(target, snapshot.substr(0, len)), WireError)
        << "truncation to " << len << " bytes must not load";
  }
  // And the untruncated snapshot still loads.
  SharedScenarioCache target(1 << 20);
  EXPECT_EQ(deserialize(target, snapshot).restored, 3u);
}

TEST(CacheIo, EverySingleBitFlipIsRejected) {
  SharedScenarioCache original(1 << 20);
  fill_cache(original, 2);
  const std::string snapshot = serialize(original);

  for (std::size_t offset = 0; offset < snapshot.size(); ++offset) {
    for (int bit = 0; bit < 8; bit += 7) {  // lowest and highest bit
      std::string corrupted = snapshot;
      corrupted[offset] = static_cast<char>(
          static_cast<unsigned char>(corrupted[offset]) ^ (1u << bit));
      SharedScenarioCache target(1 << 20);
      EXPECT_THROW(deserialize(target, corrupted), WireError)
          << "bit " << bit << " of byte " << offset
          << " flipped must not load";
    }
  }
}

TEST(CacheIo, TrailingGarbageAfterEndFrameIsRejected) {
  SharedScenarioCache original(1 << 20);
  fill_cache(original, 2);
  std::string snapshot = serialize(original);
  snapshot += '\0';
  SharedScenarioCache target(1 << 20);
  EXPECT_THROW(deserialize(target, snapshot), WireError);
}

TEST(CacheIo, MissingFileThrowsIoError) {
  SharedScenarioCache target(1 << 20);
  EXPECT_THROW(load_cache(target, "/nonexistent/cache.snapshot"), IoError);
}

// ---------------------------------------------------------------------------
// The property the snapshot exists for: a campaign rerun against a RESTORED
// cache runs entirely warm and produces bit-identical results.
// ---------------------------------------------------------------------------

TEST(CacheIo, RestoredCacheServesCampaignWarmAndBitIdentical) {
  synth::CatalogSpec catalog;
  catalog.terrains = {synth::TerrainFamily::kPlains};
  catalog.sizes = {16};
  catalog.weather = {synth::WeatherRegime::kSteady};
  catalog.ignitions = {synth::IgnitionPattern::kCenter,
                       synth::IgnitionPattern::kOffset};
  catalog.steps = 3;
  catalog.base_seed = 11;
  const auto workloads = synth::generate_catalog(catalog);

  service::CampaignConfig config;
  config.generations = 3;
  config.population = 8;
  config.offspring = 8;
  config.seed = 77;
  config.cache_policy = CachePolicy::kShared;

  config.shared_cache = std::make_shared<SharedScenarioCache>();
  const service::CampaignResult cold =
      service::CampaignScheduler(config).run(workloads);
  ASSERT_EQ(cold.succeeded(), workloads.size());
  const std::string snapshot = serialize(*config.shared_cache);

  // "Restart": a brand-new cache, warmed only from the snapshot bytes.
  config.shared_cache = std::make_shared<SharedScenarioCache>();
  const RestoreStats restored = deserialize(*config.shared_cache, snapshot);
  EXPECT_GT(restored.restored, 0u);
  EXPECT_EQ(restored.rejected, 0u);

  const std::size_t misses_before = config.shared_cache->stats().misses;
  const service::CampaignResult warm =
      service::CampaignScheduler(config).run(workloads);
  ASSERT_EQ(warm.succeeded(), workloads.size());

  const CacheStats after = config.shared_cache->stats();
  EXPECT_EQ(after.misses, misses_before)
      << "a restored cache must serve the identical campaign without a "
         "single recomputation";
  EXPECT_GT(after.hits, 0u);

  ASSERT_EQ(cold.jobs.size(), warm.jobs.size());
  for (std::size_t i = 0; i < cold.jobs.size(); ++i) {
    const service::JobRecord& a = cold.jobs[i];
    const service::JobRecord& b = warm.jobs[i];
    EXPECT_EQ(a.seed, b.seed);
    ASSERT_EQ(a.result.steps.size(), b.result.steps.size());
    for (std::size_t s = 0; s < a.result.steps.size(); ++s) {
      EXPECT_EQ(a.result.steps[s].kign, b.result.steps[s].kign);
      EXPECT_EQ(a.result.steps[s].calibration_fitness,
                b.result.steps[s].calibration_fitness);
      EXPECT_EQ(a.result.steps[s].prediction_quality,
                b.result.steps[s].prediction_quality);
    }
  }
}

}  // namespace
}  // namespace essns::cache
