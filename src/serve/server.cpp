#include "serve/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <utility>

#include "cache/cache_io.hpp"
#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/signals.hpp"

namespace essns::serve {
namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
    throw IoError("fcntl(O_NONBLOCK) failed: " +
                  std::string(std::strerror(errno)));
}

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

}  // namespace

Server::Server(ServeConfig config) : config_(std::move(config)) {
  ESSNS_REQUIRE(config_.port >= 0 && config_.port <= 65535,
                "serve: port must be in [0, 65535]");
  ESSNS_REQUIRE(config_.max_line_bytes >= 64,
                "serve: max_line_bytes must be >= 64");
}

Server::~Server() {
  for (auto& [id, conn] : conns_) close_fd(conn.fd);
  conns_.clear();
  close_fd(listen_fd_);
  close_fd(wake_read_);
  close_fd(wake_write_);
  // engine_ destroys last-ish: slots join, then trace/metrics files write.
}

void Server::start() {
  ESSNS_REQUIRE(!engine_, "serve: start() called twice");

  auto cache =
      std::make_shared<cache::SharedScenarioCache>(config_.cache_mem_bytes);
  if (!config_.cache_load.empty()) {
    const cache::RestoreStats stats =
        cache::load_cache(*cache, config_.cache_load);
    restored_entries_ = stats.restored;
  }

  service::EngineConfig engine_config;
  engine_config.job_slots = config_.job_slots;
  engine_config.total_workers = config_.total_workers;
  engine_config.queue_capacity = config_.queue_capacity;
  engine_config.shared_cache = std::move(cache);
  engine_config.simd_mode = config_.simd_mode;
  engine_config.numa_mode = config_.numa_mode;
  engine_config.backend = config_.backend;
  engine_config.trace_out = config_.trace_out;
  engine_config.metrics_out = config_.metrics_out;
  // The metrics verb scrapes the registry live, so install one even when no
  // metrics file was requested.
  engine_config.collect_metrics = true;
  engine_ = std::make_unique<service::PredictionEngine>(
      std::move(engine_config));

  int pipe_fds[2] = {-1, -1};
  if (::pipe(pipe_fds) != 0)
    throw IoError("serve: pipe() failed: " +
                  std::string(std::strerror(errno)));
  wake_read_ = pipe_fds[0];
  wake_write_ = pipe_fds[1];
  set_nonblocking(wake_read_);
  set_nonblocking(wake_write_);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0)
    throw IoError("serve: socket() failed: " +
                  std::string(std::strerror(errno)));
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(config_.port));
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1)
    throw IoError("serve: bad bind address: " + config_.host);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0)
    throw IoError("serve: bind(" + config_.host + ":" +
                  std::to_string(config_.port) +
                  ") failed: " + std::string(std::strerror(errno)));
  if (::listen(listen_fd_, 64) != 0)
    throw IoError("serve: listen() failed: " +
                  std::string(std::strerror(errno)));
  set_nonblocking(listen_fd_);

  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0)
    throw IoError("serve: getsockname() failed: " +
                  std::string(std::strerror(errno)));
  port_ = static_cast<int>(ntohs(bound.sin_port));

  if (!config_.port_file.empty()) {
    std::ofstream out(config_.port_file, std::ios::trunc);
    if (!out) throw IoError("serve: cannot write " + config_.port_file);
    out << port_ << '\n';
    if (!out.flush()) throw IoError("serve: cannot write " + config_.port_file);
  }
}

void Server::stop() {
  {
    const std::lock_guard<std::mutex> lock(outbox_mutex_);
    stop_requested_ = true;
  }
  wake();
}

void Server::wake() {
  const char byte = 'w';
  // Full pipe already guarantees a pending wakeup; EAGAIN is success.
  [[maybe_unused]] const ssize_t n = ::write(wake_write_, &byte, 1);
}

int Server::run() {
  ESSNS_REQUIRE(engine_ != nullptr, "serve: run() before start()");

  std::vector<pollfd> fds;
  std::vector<std::uint64_t> fd_conn;  // conn id per pollfd, 0 = not a conn
  char buffer[4096];

  while (true) {
    // Move completed-job responses from the slot threads onto their
    // connections (dropping any whose client already disconnected).
    std::vector<std::pair<std::uint64_t, std::string>> done;
    bool stop_now = false;
    {
      const std::lock_guard<std::mutex> lock(outbox_mutex_);
      done.swap(outbox_);
      stop_now = stop_requested_;
    }
    for (auto& [conn_id, line] : done) {
      --inflight_responses_;
      enqueue(conn_id, std::move(line));
    }

    if ((stop_now || service::drain_requested()) && !draining_) {
      draining_ = true;
      // Queued-but-unstarted jobs resolve as cancelled records (their
      // responses flush below); in-flight jobs run to completion.
      engine_->cancel_pending("cancelled: server draining");
    }

    if (draining_ && inflight_responses_ == 0) {
      bool all_flushed = true;
      for (auto& [id, conn] : conns_)
        if (!conn.out.empty()) all_flushed = false;
      if (all_flushed) break;
    }

    fds.clear();
    fd_conn.clear();
    fds.push_back({wake_read_, POLLIN, 0});
    fd_conn.push_back(0);
    if (!draining_) {
      fds.push_back({listen_fd_, POLLIN, 0});
      fd_conn.push_back(0);
    }
    for (auto& [id, conn] : conns_) {
      short events = POLLIN;
      if (!conn.out.empty()) events |= POLLOUT;
      fds.push_back({conn.fd, events, 0});
      fd_conn.push_back(id);
    }

    // Finite timeout so a drain signal that lands between drain_requested()
    // and poll() is still noticed promptly.
    const int rc = ::poll(fds.data(), fds.size(), 200);
    if (rc < 0) {
      if (errno == EINTR) continue;  // signal — loop re-checks drain state
      throw IoError("serve: poll() failed: " +
                    std::string(std::strerror(errno)));
    }

    for (std::size_t i = 0; i < fds.size(); ++i) {
      const pollfd& pfd = fds[i];
      if (pfd.revents == 0) continue;

      if (pfd.fd == wake_read_) {
        while (::read(wake_read_, buffer, sizeof(buffer)) > 0) {
        }
        continue;
      }
      if (pfd.fd == listen_fd_) {
        while (true) {
          const int client = ::accept(listen_fd_, nullptr, nullptr);
          if (client < 0) break;
          set_nonblocking(client);
          const int one = 1;
          ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
          Connection conn;
          conn.fd = client;
          conns_.emplace(next_conn_id_++, conn);
        }
        continue;
      }

      const std::uint64_t conn_id = fd_conn[i];
      const auto it = conns_.find(conn_id);
      if (it == conns_.end()) continue;
      Connection& conn = it->second;
      bool dead = (pfd.revents & (POLLERR | POLLNVAL)) != 0;

      if (!dead && (pfd.revents & (POLLIN | POLLHUP))) {
        while (true) {
          const ssize_t n = ::read(conn.fd, buffer, sizeof(buffer));
          if (n > 0) {
            conn.in.append(buffer, static_cast<std::size_t>(n));
            continue;
          }
          if (n == 0) dead = true;  // peer closed; drop pending output too
          break;                    // EAGAIN or error: stop reading
        }
        std::size_t newline;
        while (!dead &&
               (newline = conn.in.find('\n')) != std::string::npos) {
          std::string line = conn.in.substr(0, newline);
          conn.in.erase(0, newline + 1);
          if (!line.empty() && line.back() == '\r') line.pop_back();
          handle_line(conn_id, line);
          if (conns_.find(conn_id) == conns_.end()) break;  // paranoia
        }
        if (!dead && conn.in.size() > config_.max_line_bytes) {
          enqueue(conn_id, "err line exceeds " +
                               std::to_string(config_.max_line_bytes) +
                               " bytes");
          conn.close_after_flush = true;
          conn.in.clear();
        }
      }

      if (!dead && (pfd.revents & POLLOUT) && !conn.out.empty()) {
        const ssize_t n = ::write(conn.fd, conn.out.data(), conn.out.size());
        if (n > 0)
          conn.out.erase(0, static_cast<std::size_t>(n));
        else if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK)
          dead = true;
        if (!dead && conn.out.empty() && conn.close_after_flush) dead = true;
      }

      if (dead) {
        close_fd(conn.fd);
        conns_.erase(it);
      }
    }
  }

  // Best-effort blocking flush of the final bytes (shutdown acks, drain
  // cancellations) before tearing the sockets down.
  for (auto& [id, conn] : conns_) {
    pollfd pfd{conn.fd, POLLOUT, 0};
    while (!conn.out.empty() && ::poll(&pfd, 1, 1000) > 0) {
      const ssize_t n = ::write(conn.fd, conn.out.data(), conn.out.size());
      if (n <= 0) break;
      conn.out.erase(0, static_cast<std::size_t>(n));
    }
    close_fd(conn.fd);
  }
  conns_.clear();
  close_fd(listen_fd_);

  // In-flight work is done (inflight_responses_ == 0), so the cache is
  // quiescent: snapshot it for the next warm start.
  if (!config_.cache_save.empty())
    cache::save_cache(*engine_->shared_cache(), config_.cache_save);
  return 0;
}

void Server::enqueue(std::uint64_t conn_id, std::string line) {
  const auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;  // client left before the job finished
  it->second.out += line;
  it->second.out += '\n';
}

std::string Server::stats_line() const {
  const cache::CacheStats cache_stats = engine_->shared_cache()->stats();
  std::string line = "ok queue_depth=" + std::to_string(engine_->queue_depth());
  line += " in_flight=" + std::to_string(engine_->in_flight());
  line += " job_slots=" + std::to_string(engine_->job_slots());
  line += " requests=" + std::to_string(requests_);
  line += " tracked_fires=" + std::to_string(fires_.size());
  line += " restored_entries=" + std::to_string(restored_entries_);
  line += " cache_entries=" + std::to_string(cache_stats.entries);
  line += " cache_bytes=" + std::to_string(cache_stats.bytes);
  line += " cache_hits=" + std::to_string(cache_stats.hits);
  line += " cache_misses=" + std::to_string(cache_stats.misses);
  line += " cache_hit_rate=" + format_g17(cache_stats.hit_rate());
  return line;
}

void Server::handle_line(std::uint64_t conn_id, const std::string& line) {
  if (line.empty()) return;  // blank lines are keep-alive noise, not errors
  ++requests_;
  obs::add_counter("serve.requests", 1);

  Request request;
  try {
    request = parse_request(line);
  } catch (const Error& error) {
    obs::add_counter("serve.errors", 1);
    enqueue(conn_id, std::string("err bad request: ") + error.what());
    return;
  }

  switch (request.verb) {
    case Verb::kPing:
      enqueue(conn_id, "ok pong");
      return;
    case Verb::kMetrics:
      enqueue(conn_id, "ok " + compact_json(engine_->metrics_json()));
      return;
    case Verb::kStats:
      enqueue(conn_id, stats_line());
      return;
    case Verb::kShutdown: {
      enqueue(conn_id, "ok draining");
      const std::lock_guard<std::mutex> lock(outbox_mutex_);
      stop_requested_ = true;
      return;
    }
    case Verb::kPredict:
    case Verb::kRepredict:
      break;
  }

  if (draining_) {
    obs::add_counter("serve.errors", 1);
    enqueue(conn_id, "err id=" + request.id + " rejected: server draining");
    return;
  }
  submit_prediction(conn_id, request);
}

void Server::submit_prediction(std::uint64_t conn_id,
                               const Request& request) {
  const bool is_predict = request.verb == Verb::kPredict;

  synth::WorkloadRequest fire;
  service::JobSpec spec;
  if (is_predict) {
    if (fires_.count(request.id)) {
      obs::add_counter("serve.errors", 1);
      enqueue(conn_id, "err id=" + request.id +
                           " already tracked (use repredict)");
      return;
    }
    fire = config_.default_fire;
    spec = config_.default_spec;
    if (request.terrain) fire.terrain = *request.terrain;
    if (request.size) fire.size = *request.size;
    if (request.weather) fire.weather = *request.weather;
    if (request.ignition) fire.ignition = *request.ignition;
    if (request.seed) fire.seed = *request.seed;
    if (request.step_minutes) fire.step_minutes = *request.step_minutes;
    if (request.noise) fire.observation_noise = *request.noise;
    if (request.method) spec.method = *request.method;
    if (request.generations) spec.generations = *request.generations;
    if (request.fitness_threshold)
      spec.fitness_threshold = *request.fitness_threshold;
    if (request.population) spec.population = *request.population;
    if (request.offspring) spec.offspring = *request.offspring;
    if (request.novelty_k) spec.novelty_k = *request.novelty_k;
    if (request.islands) spec.islands = *request.islands;
  } else {
    const auto it = fires_.find(request.id);
    if (it == fires_.end()) {
      obs::add_counter("serve.errors", 1);
      enqueue(conn_id, "err id=" + request.id +
                           " is not tracked (predict it first)");
      return;
    }
    fire = it->second.fire;
    spec = it->second.spec;
  }
  if (request.steps) fire.steps = *request.steps;
  // A serve engine exists to keep one cache warm across requests.
  spec.cache_policy = cache::CachePolicy::kShared;

  std::shared_ptr<const synth::Workload> workload;
  try {
    workload = std::make_shared<synth::Workload>(synth::make_workload(fire));
  } catch (const Error& error) {
    obs::add_counter("serve.errors", 1);
    enqueue(conn_id,
            "err id=" + request.id + " bad fire: " + error.what());
    return;
  }

  service::JobRequest job;
  job.workload = workload;
  job.index = 0;  // every serve job is index 0: seed derivable from request
  job.campaign_seed = config_.seed;
  job.priority = request.priority.value_or(0);
  job.spec = spec;
  const std::uint64_t start_ns = obs::trace_now_ns();
  const std::string id = request.id;
  const Verb verb = request.verb;
  job.on_done = [this, conn_id, id, verb, start_ns,
                 workload](const service::JobRecord& record) {
    std::string line = format_job_response(id, verb, record);
    const double seconds =
        static_cast<double>(obs::trace_now_ns() - start_ns) * 1e-9;
    if (record.status == service::JobStatus::kSucceeded) {
      // Timing/cache fields live AFTER the deterministic prefix; oracle
      // comparisons truncate at " seconds=".
      line += " seconds=" + format_g17(seconds);
      line += " workers=" + std::to_string(record.workers);
      line += " cache_hits=" +
              std::to_string(record.result.total_cache_hits());
      line += " cache_misses=" +
              std::to_string(record.result.total_cache_misses());
    } else {
      obs::add_counter("serve.errors", 1);
    }
    obs::record_histogram("serve.request_seconds", seconds);
    obs::record_histogram(verb == Verb::kPredict ? "serve.predict_seconds"
                                                 : "serve.repredict_seconds",
                          seconds);
    {
      const std::lock_guard<std::mutex> lock(outbox_mutex_);
      outbox_.emplace_back(conn_id, std::move(line));
    }
    wake();
  };

  service::Submission submission;
  try {
    submission = engine_->submit(std::move(job));
  } catch (const Error& error) {
    obs::add_counter("serve.errors", 1);
    enqueue(conn_id,
            "err id=" + request.id + " bad request: " + error.what());
    return;
  }
  switch (submission.admission) {
    case service::Admission::kAccepted:
      break;
    case service::Admission::kQueueFull:
      obs::add_counter("serve.rejected", 1);
      enqueue(conn_id,
              "err id=" + request.id + " rejected: queue full (capacity " +
                  std::to_string(engine_->config().queue_capacity) + ")");
      return;
    case service::Admission::kShuttingDown:
      obs::add_counter("serve.rejected", 1);
      enqueue(conn_id, "err id=" + request.id + " rejected: shutting down");
      return;
  }

  ++inflight_responses_;
  if (is_predict) {
    TrackedFire tracked;
    tracked.fire = fire;  // includes the horizon this predict ran at
    tracked.spec = spec;
    tracked.predictions = 1;
    fires_.emplace(request.id, std::move(tracked));
  } else {
    ++fires_[request.id].predictions;
  }
}

}  // namespace essns::serve
