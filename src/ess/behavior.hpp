// Simulator-derived behaviour descriptors for novelty search.
//
// The paper's Eq. (2) characterizes a scenario's behaviour by its scalar
// fitness. §II-C/§IV anticipate richer characterizations; the natural one in
// this domain is the shape of the simulated burn itself. burn_descriptor
// reduces an ignition map to three normalized features:
//   [0] burned fraction of the map at the horizon,
//   [1] burn-centroid row offset from the starting fire's centroid
//       (normalized by map rows),
//   [2] burn-centroid column offset (normalized by map cols).
// Two scenarios that torch the same acreage in different directions — which
// Eq. (2) cannot distinguish — are far apart in this space.
#pragma once

#include "core/ns_ga.hpp"
#include "ess/evaluator.hpp"

namespace essns::ess {

/// Descriptor of a simulated map at `time_min`, relative to the fire state
/// `start` at `start_time`.
std::vector<double> burn_descriptor(const firelib::IgnitionMap& simulated,
                                    double time_min,
                                    const firelib::IgnitionMap& start,
                                    double start_time);

/// DescriptorFn plugging the burn descriptor into NS-GA: decodes the genome,
/// re-simulates over the evaluator's current step, and reduces the map.
/// Costs one extra simulation per evaluated individual.
core::DescriptorFn make_burn_descriptor_fn(ScenarioEvaluator& evaluator,
                                           const firelib::IgnitionMap& start,
                                           double start_time, double end_time);

}  // namespace essns::ess
