// Run configuration: a small key=value format so pipelines can be launched
// from files or command lines without recompiling — the library's front door
// for downstream users (see examples/essns_cli.cpp).
//
// Recognised keys (defaults in parentheses):
//   workload   plains | hills | wind_shift        (plains)
//   size       grid edge in cells                 (48)
//   method     ess-ga | essim-ea | essim-de | essim-de-tuned | ess-ns | ns-de
//              | essim-monitor                    (ess-ns)
//   seed       uint64                             (2022)
//   generations / fitness_threshold               (30 / 0.95)
//   population / offspring                        (24 / 24)
//   workers    OS worker threads                  (1)
//   novelty_k  Eq. (1) neighbourhood              (10)
//   islands    for the essim methods              (3)
//   cache      off | step | shared — scenario memoization policy (step;
//              legacy on/off spellings still parse as step/off)
//   cache_mem  shared-cache byte budget, MiB      (256)
//   simd       auto | avx2 | scalar — relax-kernel selection (auto)
//   numa       off | auto | on — NUMA-aware worker placement (auto)
//   backend    scalar | batched — sweep backend (scalar)
//   trace      Chrome trace-event JSON output path, or none (none)
//   metrics_out  metrics JSON output path, or none   (none)
// Lines starting with '#' and blank lines are ignored.
#pragma once

#include <iosfwd>
#include <map>
#include <memory>
#include <string>

#include "cache/scenario_cache.hpp"
#include "common/simd.hpp"
#include "ess/monitor.hpp"
#include "firelib/batch_sweep.hpp"
#include "ess/optimizer.hpp"
#include "parallel/affinity.hpp"
#include "synth/workloads.hpp"

namespace essns::ess {

struct RunSpec {
  std::string workload = "plains";
  int size = 48;
  std::string method = "ess-ns";
  std::uint64_t seed = 2022;
  int generations = 30;
  double fitness_threshold = 0.95;
  std::size_t population = 24;
  std::size_t offspring = 24;
  unsigned workers = 1;
  int novelty_k = 10;
  int islands = 3;
  /// Scenario memoization policy (results bit-identical either way).
  cache::CachePolicy cache_policy = cache::CachePolicy::kStep;
  std::size_t cache_mem_mb = 256;  ///< shared-cache byte budget (MiB)
  /// Relax-kernel selection (results bit-identical at any setting).
  simd::Mode simd_mode = simd::Mode::kAuto;
  /// NUMA-aware worker placement (performance-only).
  parallel::NumaMode numa_mode = parallel::NumaMode::kAuto;
  /// Sweep backend (results bit-identical at any setting).
  firelib::SweepBackend backend = firelib::SweepBackend::kScalar;
  /// Chrome trace-event JSON output path ("" or "none" = off). Results are
  /// bit-identical with tracing on or off (property-tested).
  std::string trace_out;
  /// Metrics JSON output path ("" or "none" = off).
  std::string metrics_out;

  /// All method names parse_run_spec accepts.
  static const std::vector<std::string>& known_methods();
};

/// Parse "key=value" lines. Unknown keys or malformed values throw
/// InvalidArgument naming the offending line.
RunSpec parse_run_spec(std::istream& in);
RunSpec parse_run_spec(const std::string& text);

/// Build the named workload at spec.size.
synth::Workload make_workload(const RunSpec& spec);

/// Build the OS strategy named by spec.method ("essim-monitor" is not an
/// Optimizer — use run_spec() which handles both layouts).
std::unique_ptr<Optimizer> make_optimizer(const RunSpec& spec);

/// End-to-end: generate the ground truth, run the configured system, return
/// the pipeline-style result (essim-monitor results are converted: one step
/// report per predicted instant with quality and Kign filled in).
PipelineResult run_spec(const RunSpec& spec);

}  // namespace essns::ess
