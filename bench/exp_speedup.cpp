// EXP-S — response time and speedup of the Master/Worker Optimization Stage
// (the "parallelism only in the evaluation of the scenarios" design, §III-B).
//
// A fixed batch of scenario evaluations is scattered over 1..8 workers and
// the wall-clock time, speedup vs 1 worker, and parallel efficiency are
// reported. NOTE (EXPERIMENTS.md): wall-clock speedup saturates at the
// host's core count — on a single-core container the table demonstrates
// correctness of the decomposition and its overhead, not scaling.
#include <cstdio>

#include "common/stopwatch.hpp"
#include "common/table.hpp"
#include "ess/evaluator.hpp"
#include "parallel/thread_pool.hpp"
#include "synth/workloads.hpp"

int main() {
  using namespace essns;

  constexpr int kGridSize = 64;
  constexpr int kBatch = 200;
  constexpr int kRepeats = 3;

  synth::Workload workload = synth::make_plains(kGridSize);
  Rng truth_rng(11);
  const synth::GroundTruth truth = synth::generate_ground_truth(
      workload.environment, workload.truth_config, truth_rng);

  // One fixed batch of genomes evaluated by every configuration.
  const auto& space = firelib::ScenarioSpace::table1();
  Rng genome_rng(13);
  std::vector<ea::Genome> batch;
  for (int i = 0; i < kBatch; ++i)
    batch.push_back(space.encode(space.sample(genome_rng)));

  const ess::StepContext context{&truth.fire_lines[0], &truth.fire_lines[1],
                                 0.0, truth.step_minutes};

  TextTable table("EXP-S Master/Worker response time (" +
                  std::to_string(kBatch) + " scenario evaluations, " +
                  std::to_string(kGridSize) + "x" +
                  std::to_string(kGridSize) + " map, best of " +
                  std::to_string(kRepeats) + ")");
  table.set_header(
      {"Workers", "time[ms]", "speedup", "efficiency", "evals/s"});

  double baseline_ms = 0.0;
  std::vector<double> reference;
  for (unsigned workers : {1u, 2u, 4u, 8u}) {
    ess::ScenarioEvaluator evaluator(workload.environment, workers);
    evaluator.set_step(context);
    auto evaluate = evaluator.batch_evaluator();

    double best_ms = 1e18;
    std::vector<double> last;
    for (int rep = 0; rep < kRepeats; ++rep) {
      Stopwatch watch;
      last = evaluate(batch);
      best_ms = std::min(best_ms, watch.elapsed_ms());
    }
    if (workers == 1) {
      baseline_ms = best_ms;
      reference = last;
    } else {
      // Correctness: parallel result identical to serial.
      for (std::size_t i = 0; i < last.size(); ++i) {
        if (last[i] != reference[i]) {
          std::fprintf(stderr, "FATAL: result mismatch at %zu\n", i);
          return 1;
        }
      }
    }
    const double speedup = baseline_ms / best_ms;
    table.add_row({std::to_string(workers), TextTable::num(best_ms, 1),
                   TextTable::num(speedup, 2),
                   TextTable::num(speedup / workers, 2),
                   TextTable::num(kBatch / (best_ms / 1e3), 0)});
  }
  table.print();
  std::printf("\nhardware concurrency of this host: %u\n",
              parallel::ThreadPool::default_thread_count());
  return 0;
}
