// Service-level contracts for the sweep-backend knob: routing a batch
// through firelib::BatchSweep must never change a result bit — at any
// worker count, queue discipline, or cache policy — in-batch duplicates
// must collapse before the batched launch, the batch counters must reach
// the metrics registry, and the `backend=` RunSpec key must parse.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "ess/config.hpp"
#include "ess/simulation_service.hpp"
#include "obs/metrics.hpp"
#include "synth/ground_truth.hpp"
#include "synth/workloads.hpp"

namespace essns::ess {
namespace {

class ServiceBackendTest : public ::testing::Test {
 protected:
  // Plains: uniform terrain, so batches actually take the batched engine
  // (DEM workloads route through its per-scenario fallback instead — see
  // TopographyWorkloadsStillBitIdentical).
  ServiceBackendTest() : workload_(synth::make_plains(32)) {
    Rng rng(5);
    truth_ = synth::generate_ground_truth(workload_.environment,
                                          workload_.truth_config, rng);
    Rng sample_rng(23);
    const auto& space = firelib::ScenarioSpace::table1();
    for (int i = 0; i < 10; ++i)
      scenarios_.push_back(space.sample(sample_rng));
  }

  std::vector<double> fitness_with(SimulationService& service) {
    return service.fitness_batch(scenarios_, truth_.fire_lines[0],
                                 truth_.fire_lines[1], 0.0,
                                 truth_.step_minutes);
  }

  synth::Workload workload_;
  synth::GroundTruth truth_;
  std::vector<firelib::Scenario> scenarios_;
};

TEST_F(ServiceBackendTest, BackendKnobDefaultsToScalar) {
  SimulationService service(workload_.environment, 1);
  EXPECT_EQ(service.backend(), firelib::SweepBackend::kScalar);
  service.set_backend(firelib::SweepBackend::kBatched);
  EXPECT_EQ(service.backend(), firelib::SweepBackend::kBatched);
  EXPECT_EQ(service.batch_dedup_hits(), 0u);
}

TEST_F(ServiceBackendTest, FitnessBitIdenticalAcrossBackendKnobMatrix) {
  // The scalar backend at one worker is the oracle; the batched backend
  // must reproduce it bitwise across worker counts, queue disciplines and
  // cache policies (the three seams a batch can reach the engine through).
  SimulationService oracle(workload_.environment, 1);
  oracle.set_cache_policy(cache::CachePolicy::kOff);
  const std::vector<double> expected = fitness_with(oracle);

  for (const cache::CachePolicy policy :
       {cache::CachePolicy::kOff, cache::CachePolicy::kStep,
        cache::CachePolicy::kShared}) {
    for (const firelib::SweepQueue queue :
         {firelib::SweepQueue::kHeap, firelib::SweepQueue::kDial}) {
      for (unsigned workers : {1u, 4u}) {
        SCOPED_TRACE(std::string("cache=") + cache::to_string(policy) +
                     " queue=" +
                     (queue == firelib::SweepQueue::kHeap ? "heap" : "dial") +
                     " workers=" + std::to_string(workers));
        SimulationService service(workload_.environment, workers);
        service.set_backend(firelib::SweepBackend::kBatched);
        service.set_cache_policy(policy);
        service.set_sweep_queue(queue);
        const std::vector<double> fitness = fitness_with(service);
        ASSERT_EQ(fitness.size(), expected.size());
        for (std::size_t i = 0; i < fitness.size(); ++i)
          EXPECT_EQ(fitness[i], expected[i]);  // bitwise, not approximate
      }
    }
  }
}

TEST_F(ServiceBackendTest, SimulateBatchMapsBitIdentical) {
  SimulationService oracle(workload_.environment, 1);
  const std::vector<firelib::IgnitionMap> expected = oracle.simulate_batch(
      scenarios_, truth_.fire_lines[0], truth_.step_minutes);

  for (unsigned workers : {1u, 4u}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    SimulationService service(workload_.environment, workers);
    service.set_backend(firelib::SweepBackend::kBatched);
    const std::vector<firelib::IgnitionMap> maps = service.simulate_batch(
        scenarios_, truth_.fire_lines[0], truth_.step_minutes);
    ASSERT_EQ(maps.size(), expected.size());
    for (std::size_t i = 0; i < maps.size(); ++i)
      EXPECT_EQ(maps[i], expected[i]);
  }
}

TEST_F(ServiceBackendTest, ReferenceKernelsKeepThePerScenarioPath) {
  // The reference sweep exists to cross-check the fast path; the batched
  // engine must step aside for it, and results must still match the
  // scalar-backend reference run bit for bit.
  SimulationService oracle(workload_.environment, 1);
  oracle.set_reference_kernels(true);
  const std::vector<double> expected = fitness_with(oracle);

  SimulationService service(workload_.environment, 1);
  service.set_reference_kernels(true);
  service.set_backend(firelib::SweepBackend::kBatched);
  const std::vector<double> fitness = fitness_with(service);
  ASSERT_EQ(fitness.size(), expected.size());
  for (std::size_t i = 0; i < fitness.size(); ++i)
    EXPECT_EQ(fitness[i], expected[i]);
}

TEST_F(ServiceBackendTest, InBatchDuplicatesCollapseBeforeTheLaunch) {
  // GA crossover/elitism makes duplicate genomes routine; the cache paths
  // dedup them before the batch engine runs, so the launch shrinks and the
  // duplicates are answered from their sibling's result.
  std::vector<firelib::Scenario> dup_heavy = scenarios_;
  dup_heavy.insert(dup_heavy.end(), scenarios_.begin(), scenarios_.end());

  SimulationService oracle(workload_.environment, 1);
  oracle.set_cache_policy(cache::CachePolicy::kOff);
  const std::vector<double> expected =
      oracle.fitness_batch(dup_heavy, truth_.fire_lines[0],
                           truth_.fire_lines[1], 0.0, truth_.step_minutes);

  SimulationService service(workload_.environment, 1);
  service.set_backend(firelib::SweepBackend::kBatched);
  service.set_cache_policy(cache::CachePolicy::kStep);
  const std::vector<double> fitness =
      service.fitness_batch(dup_heavy, truth_.fire_lines[0],
                            truth_.fire_lines[1], 0.0, truth_.step_minutes);
  EXPECT_EQ(service.batch_dedup_hits(), scenarios_.size());
  ASSERT_EQ(fitness.size(), expected.size());
  for (std::size_t i = 0; i < fitness.size(); ++i)
    EXPECT_EQ(fitness[i], expected[i]);
}

TEST_F(ServiceBackendTest, BatchCountersReachTheMetricsRegistry) {
  obs::MetricsRegistry* const previous = obs::metrics_registry();
  obs::MetricsRegistry registry;
  obs::install_metrics_registry(&registry);

  std::vector<firelib::Scenario> dup_heavy = scenarios_;
  dup_heavy.push_back(scenarios_.front());
  SimulationService service(workload_.environment, 1);
  service.set_backend(firelib::SweepBackend::kBatched);
  service.fitness_batch(dup_heavy, truth_.fire_lines[0], truth_.fire_lines[1],
                        0.0, truth_.step_minutes);
  obs::install_metrics_registry(previous);

  const obs::MetricsSnapshot snapshot = registry.snapshot();
  ASSERT_TRUE(snapshot.histograms.count("sweep.batch_size"));
  // One uncached launch of the 10 distinct scenarios (the duplicate deduped
  // away before the engine saw the batch).
  EXPECT_EQ(snapshot.histograms.at("sweep.batch_size").count, 1u);
  EXPECT_EQ(snapshot.histograms.at("sweep.batch_size").sum,
            static_cast<double>(scenarios_.size()));
  ASSERT_TRUE(snapshot.counters.count("sweep.batch_dedup_hits"));
  EXPECT_EQ(snapshot.counters.at("sweep.batch_dedup_hits"), 1u);
  // The batched engine builds each travel-time row once per batch group.
  ASSERT_TRUE(snapshot.counters.count("sweep.tt_table_rebuilds"));
  EXPECT_GT(snapshot.counters.at("sweep.tt_table_rebuilds"), 0u);
}

TEST_F(ServiceBackendTest, TopographyWorkloadsStillBitIdentical) {
  // DEM terrains have no shared travel-time table; the batch engine reruns
  // them per scenario through the scalar propagator — same bits, always.
  synth::Workload hills = synth::make_hills(24);
  Rng rng(11);
  const synth::GroundTruth truth = synth::generate_ground_truth(
      hills.environment, hills.truth_config, rng);

  SimulationService oracle(hills.environment, 1);
  const std::vector<double> expected =
      oracle.fitness_batch(scenarios_, truth.fire_lines[0],
                           truth.fire_lines[1], 0.0, truth.step_minutes);

  SimulationService service(hills.environment, 1);
  service.set_backend(firelib::SweepBackend::kBatched);
  const std::vector<double> fitness =
      service.fitness_batch(scenarios_, truth.fire_lines[0],
                            truth.fire_lines[1], 0.0, truth.step_minutes);
  ASSERT_EQ(fitness.size(), expected.size());
  for (std::size_t i = 0; i < fitness.size(); ++i)
    EXPECT_EQ(fitness[i], expected[i]);
}

TEST_F(ServiceBackendTest, RunSpecParsesBackendKey) {
  EXPECT_EQ(parse_run_spec("").backend, firelib::SweepBackend::kScalar);
  EXPECT_EQ(parse_run_spec("backend=scalar\n").backend,
            firelib::SweepBackend::kScalar);
  EXPECT_EQ(parse_run_spec("backend=batched\n").backend,
            firelib::SweepBackend::kBatched);
  EXPECT_THROW(parse_run_spec("backend=gpu\n"), InvalidArgument);
}

}  // namespace
}  // namespace essns::ess
