#include "core/ns_ga.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "ea/operators.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace essns::core {
namespace {

// Selection scores for generateOffspring: pure novelty by default, or the
// hybrid weighted sum when fitness_blend_weight > 0. Scores are min-max
// normalized per component so the blend weight is meaningful.
std::vector<double> selection_scores(const ea::Population& pop, double w) {
  std::vector<double> scores(pop.size());
  if (w <= 0.0) {
    for (std::size_t i = 0; i < pop.size(); ++i) scores[i] = pop[i].novelty;
    return scores;
  }
  auto normalized = [&](auto get) {
    double lo = std::numeric_limits<double>::infinity();
    double hi = -lo;
    for (const auto& ind : pop) {
      lo = std::min(lo, get(ind));
      hi = std::max(hi, get(ind));
    }
    std::vector<double> out(pop.size());
    const double span = hi - lo;
    for (std::size_t i = 0; i < pop.size(); ++i)
      out[i] = span > 0.0 ? (get(pop[i]) - lo) / span : 0.0;
    return out;
  };
  const auto fit = normalized([](const ea::Individual& i) { return i.fitness; });
  const auto nov = normalized([](const ea::Individual& i) { return i.novelty; });
  for (std::size_t i = 0; i < pop.size(); ++i)
    scores[i] = w * fit[i] + (1.0 - w) * nov[i];
  return scores;
}

void batch_evaluate(ea::Population& pop, const ea::BatchEvaluator& evaluate,
                    const DescriptorFn& descriptor, std::size_t& evaluations) {
  std::vector<ea::Genome> genomes;
  std::vector<std::size_t> indices;
  for (std::size_t i = 0; i < pop.size(); ++i) {
    if (!pop[i].evaluated()) {
      genomes.push_back(pop[i].genome);
      indices.push_back(i);
    }
  }
  if (genomes.empty()) return;
  const std::vector<double> fitness = evaluate(genomes);
  ESSNS_REQUIRE(fitness.size() == genomes.size(),
                "evaluator must return one fitness per genome");
  for (std::size_t j = 0; j < indices.size(); ++j) {
    pop[indices[j]].fitness = fitness[j];
    if (descriptor)
      pop[indices[j]].descriptor = descriptor(pop[indices[j]].genome);
  }
  evaluations += genomes.size();
}

}  // namespace

NsGaResult run_ns_ga(const NsGaConfig& config, std::size_t dim,
                     const ea::BatchEvaluator& evaluate,
                     const ea::StopCondition& stop, Rng& rng,
                     const BehaviorDistance& dist,
                     const ea::GenerationObserver& observer) {
  ESSNS_REQUIRE(config.population_size >= 2, "NS-GA population >= 2");
  ESSNS_REQUIRE(config.offspring_count >= 1, "NS-GA offspring >= 1");
  ESSNS_REQUIRE(config.fitness_blend_weight >= 0.0 &&
                    config.fitness_blend_weight <= 1.0,
                "fitness blend weight in [0,1]");

  NsGaResult result;
  // Lines 1-5: initialization.
  ea::Population population =
      ea::random_population(config.population_size, dim, rng);
  NoveltyArchive archive(config.archive, rng.split(0x5eed)());
  BestSet best_set(config.best_set_capacity);

  batch_evaluate(population, evaluate, config.descriptor, result.evaluations);
  best_set.update(population);  // seed bestSet so maxFitness is defined

  int generations = 0;
  if (observer) observer(generations, population);

  // Line 6: two stopping conditions (generations, fitness threshold).
  while (!stop.done(generations, best_set.max_fitness())) {
    ESSNS_TRACE_SPAN("os.generation");
    obs::add_counter("os.generations", 1);
    // Line 7: generateOffspring — roulette selection on the novelty-based
    // score (0 for everyone in generation 0, i.e. uniform), crossover cR,
    // per-gene mutation mR.
    const std::vector<double> scores =
        selection_scores(population, config.fitness_blend_weight);
    ea::Population offspring;
    offspring.reserve(config.offspring_count);
    while (offspring.size() < config.offspring_count) {
      const std::size_t ia = ea::roulette_select(scores, rng);
      const std::size_t ib = ea::roulette_select(scores, rng);
      ea::Genome c1 = population[ia].genome;
      ea::Genome c2 = population[ib].genome;
      if (rng.bernoulli(config.crossover_rate))
        std::tie(c1, c2) = ea::uniform_crossover(c1, c2, rng);
      ea::gaussian_mutation(c1, config.mutation_rate, config.mutation_sigma,
                            rng);
      ea::gaussian_mutation(c2, config.mutation_rate, config.mutation_sigma,
                            rng);
      ea::Individual child1, child2;
      child1.genome = std::move(c1);
      child2.genome = std::move(c2);
      offspring.push_back(std::move(child1));
      if (offspring.size() < config.offspring_count)
        offspring.push_back(std::move(child2));
    }

    // Lines 8-10: fitness of population ∪ offspring (population is already
    // evaluated; the batch evaluator call is the parallelized simulation).
    batch_evaluate(offspring, evaluate, config.descriptor, result.evaluations);

    // Line 11: noveltySet <- population ∪ offspring ∪ archive.
    std::vector<ea::Individual> novelty_set;
    novelty_set.reserve(population.size() + offspring.size() + archive.size());
    novelty_set.insert(novelty_set.end(), population.begin(), population.end());
    novelty_set.insert(novelty_set.end(), offspring.begin(), offspring.end());
    novelty_set.insert(novelty_set.end(), archive.items().begin(),
                       archive.items().end());

    // Lines 12-14: novelty of every individual in population ∪ offspring.
    evaluate_novelty(population, novelty_set, config.novelty_k, dist);
    evaluate_novelty(offspring, novelty_set, config.novelty_k, dist);

    // Line 15: archive update with the most novel offspring.
    archive.update(offspring);

    // Line 17: bestSet <- updateBest(bestSet, offspring). Done before the
    // replacement step so high-fitness offspring are recorded even when
    // their novelty is too low to survive into the next population — the
    // property §III-A calls the main advantage of NS for this application.
    best_set.update(offspring);

    // Line 16: replaceByNovelty — elitist selection over the whole
    // population ∪ offspring pool, ranked by novelty.
    ea::Population pool;
    pool.reserve(population.size() + offspring.size());
    pool.insert(pool.end(), std::make_move_iterator(population.begin()),
                std::make_move_iterator(population.end()));
    pool.insert(pool.end(), std::make_move_iterator(offspring.begin()),
                std::make_move_iterator(offspring.end()));
    std::sort(pool.begin(), pool.end(), [](const auto& a, const auto& b) {
      return a.novelty > b.novelty;
    });
    pool.resize(config.population_size);
    population = std::move(pool);

    // Line 19 (line 18's getMaxFitness is read via best_set.max_fitness()).
    ++generations;
    if (observer) observer(generations, population);
  }

  result.best_set = best_set.items();
  result.population = std::move(population);
  result.archive = archive.items();
  result.max_fitness = best_set.max_fitness();
  result.generations = generations;
  return result;
}

}  // namespace essns::core
