// Typed blocking channel: the in-process substitute for MPI point-to-point
// messaging (see DESIGN.md §2). Multiple producers, multiple consumers;
// close() delivers end-of-stream to receivers, mirroring an MPI termination
// tag. All operations are thread-safe.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "common/error.hpp"

namespace essns::parallel {

template <typename T>
class Channel {
 public:
  explicit Channel(std::size_t capacity = 0) : capacity_(capacity) {}

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Blocking send; returns false when the channel is closed (message is
  /// dropped, matching a send to a finalized MPI rank being an error the
  /// caller must handle).
  bool send(T value) {
    std::unique_lock lock(mutex_);
    not_full_.wait(lock, [&] {
      return closed_ || capacity_ == 0 || queue_.size() < capacity_;
    });
    if (closed_) return false;
    queue_.push_back(std::move(value));
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking send; returns false if full or closed.
  bool try_send(T value) {
    std::lock_guard lock(mutex_);
    if (closed_ || (capacity_ != 0 && queue_.size() >= capacity_)) return false;
    queue_.push_back(std::move(value));
    not_empty_.notify_one();
    return true;
  }

  /// Blocking receive; nullopt means closed and drained.
  std::optional<T> receive() {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !queue_.empty(); });
    if (queue_.empty()) return std::nullopt;
    T value = std::move(queue_.front());
    queue_.pop_front();
    not_full_.notify_one();
    return value;
  }

  /// Non-blocking receive.
  std::optional<T> try_receive() {
    std::lock_guard lock(mutex_);
    if (queue_.empty()) return std::nullopt;
    T value = std::move(queue_.front());
    queue_.pop_front();
    not_full_.notify_one();
    return value;
  }

  /// Close: wakes all blocked senders/receivers; queued items remain
  /// receivable until drained.
  void close() {
    std::lock_guard lock(mutex_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard lock(mutex_);
    return queue_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> queue_;
  std::size_t capacity_;  // 0 = unbounded
  bool closed_ = false;
};

}  // namespace essns::parallel
