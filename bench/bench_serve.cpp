// EXP-B9 — serving benchmark: an in-process serve::Server driven over a
// real loopback socket through the line protocol, measuring the production
// re-prediction pattern end to end (socket + parse + engine queue + EA +
// cache + response formatting):
//
//   cold    predict N distinct fires (distinct seeds — nothing shareable);
//   warm    repredict every fire at the same horizon, several rounds — the
//           steady-state request mix the shared cache exists for;
//   extend  repredict every fire one step further out — the successive
//           observation intervals of the paper's workflow, where the
//           ground-truth prefix is unchanged and only the new step is cold.
//
// Enforced invariants (any violation exits nonzero, which is how CI pins
// the acceptance criteria):
//   - every response's deterministic prefix is byte-identical to an
//     in-process oracle (service::run_prediction_job with the cache OFF,
//     formatted through the same serve::format_job_response);
//   - the warm phase performs zero cache misses;
//   - warm repredictions run at least 2x faster than cold predictions.
//
// Reported (BENCH_serve.json): per-phase requests/sec and latency
// mean/p50/p99, the warm and extend speedups over cold, divergence and
// warm-miss counts, plus the server's own metrics scrape. Plain main on
// purpose (no Google Benchmark) so the target always builds.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "common/statistics.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "service/engine.hpp"
#include "synth/catalog.hpp"

namespace {

using namespace essns;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct PhaseStats {
  std::string name;
  std::vector<double> latencies;  ///< per-request wall seconds
  double wall_seconds = 0.0;

  double mean() const {
    double sum = 0.0;
    for (double x : latencies) sum += x;
    return latencies.empty() ? 0.0
                             : sum / static_cast<double>(latencies.size());
  }
  double percentile(double q) const {
    std::vector<double> sorted = latencies;
    std::sort(sorted.begin(), sorted.end());
    return sorted.empty() ? 0.0 : quantile_sorted(sorted, q);
  }
  double requests_per_sec() const {
    return wall_seconds > 0.0
               ? static_cast<double>(latencies.size()) / wall_seconds
               : 0.0;
  }
};

/// The deterministic prefix of a prediction response: everything before the
/// " seconds=" timing/cache suffix (see serve/protocol.hpp).
std::string deterministic_prefix(const std::string& line) {
  const std::size_t pos = line.find(" seconds=");
  return pos == std::string::npos ? line : line.substr(0, pos);
}

/// Timing/cache suffix value, e.g. suffix_counter(line, " cache_misses=").
std::uint64_t suffix_counter(const std::string& line, const char* key) {
  const std::size_t pos = line.find(key);
  if (pos == std::string::npos) return 0;
  return std::strtoull(line.c_str() + pos + std::strlen(key), nullptr, 10);
}

/// What the server must answer for (id, verb, fire): the pure job function
/// run with the cache OFF — if the engine's shared cache ever changed a
/// result, the comparison against this oracle catches it.
std::string oracle_response(const std::string& id, serve::Verb verb,
                            const synth::WorkloadRequest& fire,
                            const serve::ServeConfig& config,
                            unsigned workers) {
  const synth::Workload workload = synth::make_workload(fire);
  service::JobSpec spec = config.default_spec;
  spec.cache_policy = cache::CachePolicy::kOff;
  const service::JobRecord record = service::run_prediction_job(
      workload, /*index=*/0, config.seed, workers, spec, config.simd_mode,
      config.numa_mode, config.backend, nullptr);
  return serve::format_job_response(id, verb, record);
}

}  // namespace

int main(int argc, char** argv) {
  // --quick: smaller fires and fewer rounds for CI smoke tracking.
  bool quick = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;

  const std::size_t fires = quick ? 4 : 8;
  const int warm_rounds = quick ? 2 : 3;
  const unsigned workers =
      std::min(4u, std::max(1u, std::thread::hardware_concurrency()));

  serve::ServeConfig config;
  config.job_slots = 1;  // serial engine: latencies are service times
  config.total_workers = workers;
  config.queue_capacity = 32;
  config.default_fire.size = quick ? 16 : 24;
  config.default_fire.steps = quick ? 3 : 4;
  config.default_spec.generations = quick ? 3 : 6;
  config.default_spec.population = quick ? 8 : 12;
  config.default_spec.offspring = quick ? 8 : 12;
  config.default_spec.fitness_threshold = 1.1;  // fixed generation budget

  std::printf(
      "serve benchmark (%s): %zu fires, grid %d, %d steps, %u workers\n",
      quick ? "quick" : "full", fires, config.default_fire.size,
      config.default_fire.steps, workers);

  serve::Server server(config);
  server.start();
  std::thread server_thread([&server] { server.run(); });

  std::size_t divergences = 0;
  std::uint64_t warm_misses = 0;
  PhaseStats cold{"cold", {}, 0.0};
  PhaseStats warm{"warm", {}, 0.0};
  PhaseStats extend{"extend", {}, 0.0};
  std::string metrics_json = "null";

  {
    serve::LineClient client("127.0.0.1", server.port(), 600.0);

    auto timed = [&](PhaseStats& phase, const std::string& request,
                     const std::string& expected_prefix) {
      const double start = now_seconds();
      const std::string response = client.request(request);
      phase.latencies.push_back(now_seconds() - start);
      if (deterministic_prefix(response) != expected_prefix) {
        ++divergences;
        std::fprintf(stderr, "DIVERGED on '%s'\n  server: %s\n  oracle: %s\n",
                     request.c_str(), response.c_str(),
                     expected_prefix.c_str());
      }
      return response;
    };

    // Per-fire oracles, computed up front so oracle time never leaks into
    // the phase clocks. Distinct seeds keep the cold phase genuinely cold.
    std::vector<synth::WorkloadRequest> fire_params(fires);
    std::vector<std::string> cold_expected(fires), warm_expected(fires),
        extend_expected(fires);
    for (std::size_t i = 0; i < fires; ++i) {
      synth::WorkloadRequest fire = config.default_fire;
      fire.seed = 1000 + 17 * i;
      fire_params[i] = fire;
      const std::string id = "bench" + std::to_string(i);
      cold_expected[i] =
          oracle_response(id, serve::Verb::kPredict, fire, config, workers);
      warm_expected[i] =
          oracle_response(id, serve::Verb::kRepredict, fire, config, workers);
      synth::WorkloadRequest extended = fire;
      extended.steps += 1;
      extend_expected[i] = oracle_response(id, serve::Verb::kRepredict,
                                           extended, config, workers);
    }

    double phase_start = now_seconds();
    for (std::size_t i = 0; i < fires; ++i)
      timed(cold,
            "predict id=bench" + std::to_string(i) +
                " seed=" + std::to_string(fire_params[i].seed),
            cold_expected[i]);
    cold.wall_seconds = now_seconds() - phase_start;

    phase_start = now_seconds();
    for (int round = 0; round < warm_rounds; ++round)
      for (std::size_t i = 0; i < fires; ++i) {
        const std::string response =
            timed(warm, "repredict id=bench" + std::to_string(i),
                  warm_expected[i]);
        warm_misses += suffix_counter(response, " cache_misses=");
      }
    warm.wall_seconds = now_seconds() - phase_start;

    phase_start = now_seconds();
    for (std::size_t i = 0; i < fires; ++i)
      timed(extend,
            "repredict id=bench" + std::to_string(i) +
                " steps=" + std::to_string(fire_params[i].steps + 1),
            extend_expected[i]);
    extend.wall_seconds = now_seconds() - phase_start;

    const std::string metrics = client.request("metrics");
    if (metrics.rfind("ok ", 0) == 0) metrics_json = metrics.substr(3);
    client.request("shutdown");
  }
  server_thread.join();

  const double warm_speedup =
      warm.mean() > 0.0 ? cold.mean() / warm.mean() : 0.0;
  const double extend_speedup =
      extend.mean() > 0.0 ? cold.mean() / extend.mean() : 0.0;

  const PhaseStats* phases[] = {&cold, &warm, &extend};
  for (const PhaseStats* phase : phases)
    std::printf(
        "  %-6s %3zu requests  %7.2f req/s  mean %8.4fs  p50 %8.4fs  "
        "p99 %8.4fs\n",
        phase->name.c_str(), phase->latencies.size(),
        phase->requests_per_sec(), phase->mean(), phase->percentile(0.5),
        phase->percentile(0.99));
  std::printf("  warm vs cold:   %.2fx\n", warm_speedup);
  std::printf("  extend vs cold: %.2fx\n", extend_speedup);
  std::printf("  oracle divergences: %zu\n", divergences);
  std::printf("  warm-phase cache misses: %llu\n",
              static_cast<unsigned long long>(warm_misses));

  const bool ok = divergences == 0 && warm_misses == 0 && warm_speedup >= 2.0;

  const char* json_path = "BENCH_serve.json";
  std::FILE* out = std::fopen(json_path, "w");
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return 1;
  }
  std::fprintf(out, "{\n  \"benchmark\": \"serve\",\n");
  std::fprintf(out, "  \"hardware\": {%s},\n",
               benchmain::hardware_json_fields().c_str());
  std::fprintf(out, "  \"quick\": %s,\n", quick ? "true" : "false");
  std::fprintf(out,
               "  \"fires\": %zu,\n  \"grid\": %d,\n  \"steps\": %d,\n"
               "  \"generations\": %d,\n  \"population\": %zu,\n"
               "  \"job_slots\": %u,\n  \"workers\": %u,\n",
               fires, config.default_fire.size, config.default_fire.steps,
               config.default_spec.generations, config.default_spec.population,
               config.job_slots, workers);
  std::fprintf(out, "  \"phases\": [\n");
  for (std::size_t i = 0; i < 3; ++i) {
    const PhaseStats& phase = *phases[i];
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"requests\": %zu, "
                 "\"requests_per_sec\": %.4f, \"mean_seconds\": %.6f, "
                 "\"p50_seconds\": %.6f, \"p99_seconds\": %.6f}%s\n",
                 phase.name.c_str(), phase.latencies.size(),
                 phase.requests_per_sec(), phase.mean(), phase.percentile(0.5),
                 phase.percentile(0.99), i + 1 < 3 ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"warm_speedup_vs_cold\": %.4f,\n", warm_speedup);
  std::fprintf(out, "  \"extend_speedup_vs_cold\": %.4f,\n", extend_speedup);
  std::fprintf(out, "  \"oracle_divergences\": %zu,\n", divergences);
  std::fprintf(out, "  \"warm_cache_misses\": %llu,\n",
               static_cast<unsigned long long>(warm_misses));
  std::fprintf(out, "  \"passed\": %s,\n", ok ? "true" : "false");
  std::fprintf(out, "  \"server_metrics\": %s\n}\n", metrics_json.c_str());
  std::fclose(out);
  std::printf("wrote %s\n", json_path);
  return ok ? 0 : 1;
}
