#include "service/engine.hpp"

#include <gtest/gtest.h>

#include <condition_variable>
#include <csignal>
#include <future>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "service/campaign.hpp"
#include "service/report.hpp"
#include "service/signals.hpp"
#include "synth/catalog.hpp"

namespace essns::service {
namespace {

// Same tiny-but-real fixture as test_campaign.cpp: 4 distinct fires on
// 16x16 maps, 3 truth steps, small search budget.
std::vector<synth::Workload> tiny_workloads() {
  synth::CatalogSpec spec;
  spec.terrains = {synth::TerrainFamily::kPlains,
                   synth::TerrainFamily::kHills};
  spec.sizes = {16};
  spec.weather = {synth::WeatherRegime::kSteady};
  spec.ignitions = {synth::IgnitionPattern::kCenter,
                    synth::IgnitionPattern::kOffset};
  spec.steps = 3;
  spec.base_seed = 11;
  return synth::generate_catalog(spec);
}

CampaignConfig tiny_config() {
  CampaignConfig config;
  config.generations = 3;
  config.population = 8;
  config.offspring = 8;
  config.seed = 77;
  return config;
}

JobSpec tiny_spec() {
  JobSpec spec;
  spec.generations = 3;
  spec.population = 8;
  spec.offspring = 8;
  return spec;
}

std::shared_ptr<const synth::Workload> share(const synth::Workload& w) {
  return std::make_shared<synth::Workload>(w);
}

/// Canonical (timings=zero) report rendering — the byte string the
/// engine-vs-reference property compares.
std::string canonical_reports(const CampaignResult& result) {
  ReportOptions options;
  options.zero_timings = true;
  std::ostringstream out;
  write_campaign_jsonl(result, out, options);
  out << "\n--csv--\n";
  write_campaign_csv(result, out, options);
  out << "\n--summary--\n" << campaign_summary_json(result, options);
  return out.str();
}

/// Holds an engine slot busy until release() — makes admission, priority
/// and cancellation deterministic to observe.
class SlotGate {
 public:
  std::function<void()> blocker() {
    return [this] {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return open_; });
    };
  }
  void release() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      open_ = true;
    }
    cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool open_ = false;
};

// ---------------------------------------------------------------------------
// The tentpole property: CampaignScheduler::run() (thin client of the
// engine) is byte-identical to run_reference() (the retained pre-engine
// scheduling loop) across worker counts x job concurrency x cache policy.
// ---------------------------------------------------------------------------

TEST(PredictionEngine, CampaignViaEngineMatchesReferenceByteForByte) {
  const auto workloads = tiny_workloads();

  struct Combo {
    unsigned workers;
    unsigned jobs;
    cache::CachePolicy policy;
  };
  // Per-job (off/step) cache counters are deterministic at any concurrency,
  // and serial shared-cache runs replay one hit/miss sequence — so every
  // combo here renders byte-identical canonical reports.
  const Combo combos[] = {
      {1, 1, cache::CachePolicy::kStep},
      {2, 3, cache::CachePolicy::kStep},
      {4, 2, cache::CachePolicy::kStep},
      {1, 1, cache::CachePolicy::kShared},
  };
  for (const Combo& combo : combos) {
    CampaignConfig config = tiny_config();
    config.total_workers = combo.workers;
    config.job_concurrency = combo.jobs;
    config.cache_policy = combo.policy;
    const CampaignScheduler scheduler(config);

    const std::string via_engine = canonical_reports(scheduler.run(workloads));
    const std::string reference =
        canonical_reports(scheduler.run_reference(workloads));
    EXPECT_EQ(via_engine, reference)
        << "engine-backed campaign diverged at workers=" << combo.workers
        << " jobs=" << combo.jobs
        << " cache=" << cache::to_string(combo.policy);
  }
}

TEST(PredictionEngine, ConcurrentSharedCacheCampaignMatchesReferenceResults) {
  // Under a CONCURRENTLY shared cache the hit/miss pattern is scheduling-
  // dependent (so reports are not byte-comparable), but every result field
  // must still be bit-identical to the reference scheduler's.
  const auto workloads = tiny_workloads();
  CampaignConfig config = tiny_config();
  config.total_workers = 2;
  config.job_concurrency = 2;
  config.cache_policy = cache::CachePolicy::kShared;
  const CampaignScheduler scheduler(config);

  const CampaignResult via_engine = scheduler.run(workloads);
  const CampaignResult reference = scheduler.run_reference(workloads);
  ASSERT_EQ(via_engine.jobs.size(), reference.jobs.size());
  for (std::size_t i = 0; i < reference.jobs.size(); ++i) {
    const JobRecord& a = via_engine.jobs[i];
    const JobRecord& b = reference.jobs[i];
    EXPECT_EQ(a.seed, b.seed);
    EXPECT_EQ(a.workers, b.workers);
    EXPECT_EQ(a.status, b.status);
    ASSERT_EQ(a.result.steps.size(), b.result.steps.size());
    for (std::size_t s = 0; s < a.result.steps.size(); ++s) {
      EXPECT_EQ(a.result.steps[s].kign, b.result.steps[s].kign);
      EXPECT_EQ(a.result.steps[s].calibration_fitness,
                b.result.steps[s].calibration_fitness);
      EXPECT_EQ(a.result.steps[s].prediction_quality,
                b.result.steps[s].prediction_quality);
      EXPECT_EQ(a.result.steps[s].os_evaluations,
                b.result.steps[s].os_evaluations);
    }
  }
}

TEST(PredictionEngine, SubmittedJobMatchesPureOracle) {
  const auto workloads = tiny_workloads();

  EngineConfig config;
  config.job_slots = 2;
  config.total_workers = 2;
  PredictionEngine engine(config);

  JobRequest request;
  request.workload = share(workloads[0]);
  request.index = 3;
  request.campaign_seed = 77;
  request.spec = tiny_spec();
  Submission submission = engine.submit(std::move(request));
  ASSERT_EQ(submission.admission, Admission::kAccepted);
  const JobRecord scheduled = submission.record.get();

  const JobRecord oracle = run_prediction_job(
      workloads[0], 3, 77, engine.default_workers_per_job(), tiny_spec(),
      simd::Mode::kAuto, parallel::NumaMode::kAuto,
      firelib::SweepBackend::kScalar, nullptr);

  EXPECT_EQ(scheduled.status, JobStatus::kSucceeded);
  EXPECT_EQ(scheduled.seed, oracle.seed);
  EXPECT_EQ(scheduled.seed, campaign_job_seed(77, workloads[0].seed, 3));
  ASSERT_EQ(scheduled.result.steps.size(), oracle.result.steps.size());
  for (std::size_t i = 0; i < oracle.result.steps.size(); ++i) {
    EXPECT_EQ(scheduled.result.steps[i].kign, oracle.result.steps[i].kign);
    EXPECT_EQ(scheduled.result.steps[i].prediction_quality,
              oracle.result.steps[i].prediction_quality);
  }
}

TEST(PredictionEngine, HigherPriorityRunsFirstFifoWithinLevel) {
  const auto workloads = tiny_workloads();

  EngineConfig config;
  config.job_slots = 1;
  config.queue_capacity = 8;
  PredictionEngine engine(config);

  SlotGate gate;
  std::mutex order_mutex;
  std::vector<std::size_t> order;

  auto submit = [&](std::size_t index, int priority, bool blocks) {
    JobRequest request;
    request.workload = share(workloads[index % workloads.size()]);
    request.index = index;
    request.campaign_seed = 77;
    request.priority = priority;
    request.spec = tiny_spec();
    if (blocks) request.debug_before_run = gate.blocker();
    request.on_done = [&, index](const JobRecord&) {
      const std::lock_guard<std::mutex> lock(order_mutex);
      order.push_back(index);
    };
    Submission submission = engine.submit(std::move(request));
    EXPECT_EQ(submission.admission, Admission::kAccepted);
    return std::move(submission.record);
  };

  // Job 0 occupies the only slot; 1..3 queue up behind it. Wait for the
  // slot to claim job 0 so the queue order below is the whole story.
  auto f0 = submit(0, 0, true);
  while (engine.in_flight() == 0) std::this_thread::yield();
  auto f1 = submit(1, 0, false);   // low priority, submitted first
  auto f2 = submit(2, 5, false);   // high priority
  auto f3 = submit(3, 5, false);   // same high priority, later -> after 2
  gate.release();
  f0.get();
  f1.get();
  f2.get();
  f3.get();

  const std::vector<std::size_t> expected = {0, 2, 3, 1};
  EXPECT_EQ(order, expected);
}

TEST(PredictionEngine, BoundedQueueAnswersQueueFull) {
  const auto workloads = tiny_workloads();

  EngineConfig config;
  config.job_slots = 1;
  config.queue_capacity = 1;
  PredictionEngine engine(config);

  SlotGate gate;
  JobRequest blocker;
  blocker.workload = share(workloads[0]);
  blocker.spec = tiny_spec();
  blocker.debug_before_run = gate.blocker();
  auto running = engine.submit(std::move(blocker));
  ASSERT_EQ(running.admission, Admission::kAccepted);
  // Wait until the blocker leaves the queue for its slot so capacity frees.
  while (engine.in_flight() == 0) std::this_thread::yield();

  JobRequest queued;
  queued.workload = share(workloads[1]);
  queued.spec = tiny_spec();
  auto waiting = engine.submit(std::move(queued));
  EXPECT_EQ(waiting.admission, Admission::kAccepted);

  JobRequest overflow;
  overflow.workload = share(workloads[2]);
  overflow.spec = tiny_spec();
  auto rejected = engine.submit(std::move(overflow));
  EXPECT_EQ(rejected.admission, Admission::kQueueFull);

  gate.release();
  EXPECT_EQ(running.record.get().status, JobStatus::kSucceeded);
  EXPECT_EQ(waiting.record.get().status, JobStatus::kSucceeded);
}

TEST(PredictionEngine, CancelPendingResolvesFuturesAsFailedRecords) {
  const auto workloads = tiny_workloads();

  EngineConfig config;
  config.job_slots = 1;
  config.queue_capacity = 8;
  PredictionEngine engine(config);

  SlotGate gate;
  JobRequest blocker;
  blocker.workload = share(workloads[0]);
  blocker.spec = tiny_spec();
  blocker.debug_before_run = gate.blocker();
  auto running = engine.submit(std::move(blocker));
  ASSERT_EQ(running.admission, Admission::kAccepted);
  while (engine.in_flight() == 0) std::this_thread::yield();

  JobRequest queued;
  queued.workload = share(workloads[1]);
  queued.index = 1;
  queued.spec = tiny_spec();
  auto waiting = engine.submit(std::move(queued));
  ASSERT_EQ(waiting.admission, Admission::kAccepted);

  EXPECT_EQ(engine.cancel_pending("cancelled: test"), 1u);
  const JobRecord record = waiting.record.get();
  EXPECT_EQ(record.status, JobStatus::kFailed);
  EXPECT_EQ(record.error, "cancelled: test");
  EXPECT_EQ(record.index, 1u);
  EXPECT_EQ(record.seed, campaign_job_seed(2022, workloads[1].seed, 1));

  gate.release();
  EXPECT_EQ(running.record.get().status, JobStatus::kSucceeded);
}

TEST(PredictionEngine, DestructionCancelsQueuedJobs) {
  const auto workloads = tiny_workloads();

  SlotGate gate;
  std::future<JobRecord> queued_future;
  {
    EngineConfig config;
    config.job_slots = 1;
    config.queue_capacity = 8;
    PredictionEngine engine(config);

    JobRequest blocker;
    blocker.workload = share(workloads[0]);
    blocker.spec = tiny_spec();
    blocker.debug_before_run = gate.blocker();
    ASSERT_EQ(engine.submit(std::move(blocker)).admission,
              Admission::kAccepted);
    while (engine.in_flight() == 0) std::this_thread::yield();

    JobRequest queued;
    queued.workload = share(workloads[1]);
    queued.spec = tiny_spec();
    auto submission = engine.submit(std::move(queued));
    ASSERT_EQ(submission.admission, Admission::kAccepted);
    queued_future = std::move(submission.record);

    gate.release();  // the dtor joins the in-flight job, cancels the rest
  }
  const JobRecord record = queued_future.get();
  EXPECT_EQ(record.status, JobStatus::kFailed);
  EXPECT_NE(record.error.find("cancelled"), std::string::npos);
}

TEST(PredictionEngine, RejectsMalformedRequests) {
  EngineConfig config;
  PredictionEngine engine(config);

  JobRequest null_workload;
  EXPECT_THROW(engine.submit(std::move(null_workload)), InvalidArgument);

  JobRequest bad_method;
  bad_method.workload = share(tiny_workloads()[0]);
  bad_method.spec = tiny_spec();
  bad_method.spec.method = "no-such-method";
  EXPECT_THROW(engine.submit(std::move(bad_method)), InvalidArgument);
}

TEST(PredictionEngine, SplitsWorkerBudgetOverSlots) {
  EngineConfig config;
  config.job_slots = 2;
  config.total_workers = 4;
  PredictionEngine engine(config);
  EXPECT_EQ(engine.default_workers_per_job(), 2u);
}

// ---------------------------------------------------------------------------
// Satellite: SIGINT/SIGTERM drain. A self-raised SIGINT mid-campaign must
// not kill the process; in-flight work finishes, queued jobs resolve as
// cancelled records, and reports still render.
// ---------------------------------------------------------------------------

TEST(PredictionEngine, SignalDrainCancelsQueuedJobsButFinishesInFlight) {
  const auto workloads = tiny_workloads();
  ScopedSignalDrain handler;
  reset_drain();

  EngineConfig config;
  config.job_slots = 1;
  config.queue_capacity = 8;
  std::vector<std::future<JobRecord>> futures;
  {
    PredictionEngine engine(config);
    for (std::size_t i = 0; i < workloads.size(); ++i) {
      JobRequest request;
      request.workload = share(workloads[i]);
      request.index = i;
      request.spec = tiny_spec();
      if (i == 0)
        // The signal lands while job 0 occupies the slot: job 0 must still
        // complete, everything queued behind it must cancel.
        request.debug_before_run = [] { std::raise(SIGINT); };
      auto submission = engine.submit(std::move(request));
      ASSERT_EQ(submission.admission, Admission::kAccepted);
      futures.push_back(std::move(submission.record));
    }
    engine.drain();
    EXPECT_TRUE(drain_requested());
  }

  const JobRecord first = futures[0].get();
  EXPECT_EQ(first.status, JobStatus::kSucceeded);
  for (std::size_t i = 1; i < futures.size(); ++i) {
    const JobRecord record = futures[i].get();
    EXPECT_EQ(record.status, JobStatus::kFailed);
    EXPECT_NE(record.error.find("drain requested"), std::string::npos);
  }
  reset_drain();
}

TEST(CampaignScheduler, SignalDrainStillProducesFullReports) {
  const auto workloads = tiny_workloads();
  ScopedSignalDrain handler;
  reset_drain();

  CampaignConfig config = tiny_config();
  config.on_job_done = [](const JobRecord& job) {
    if (job.index == 0) std::raise(SIGINT);
  };
  const CampaignScheduler scheduler(config);
  const CampaignResult result = scheduler.run(workloads);

  // Every submitted job has a record — finished ones as successes, drained
  // ones as cancelled failures — so the reports cover the whole catalog.
  ASSERT_EQ(result.jobs.size(), workloads.size());
  EXPECT_GE(result.succeeded(), 1u);
  EXPECT_GE(result.failed(), 1u);
  for (const JobRecord& job : result.jobs) {
    if (job.status == JobStatus::kFailed) {
      EXPECT_NE(job.error.find("drain"), std::string::npos);
    }
  }
  const std::string reports = canonical_reports(result);
  EXPECT_NE(reports.find("\"jobs\""), std::string::npos);
  reset_drain();
}

}  // namespace
}  // namespace essns::service
