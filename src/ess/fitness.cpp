#include "ess/fitness.hpp"

#include <cmath>

#include "common/error.hpp"

namespace essns::ess {

double jaccard(const Grid<std::uint8_t>& real_burned,
               const Grid<std::uint8_t>& simulated_burned,
               const Grid<std::uint8_t>& preburned) {
  ESSNS_REQUIRE(real_burned.rows() == simulated_burned.rows() &&
                    real_burned.cols() == simulated_burned.cols() &&
                    real_burned.rows() == preburned.rows() &&
                    real_burned.cols() == preburned.cols(),
                "jaccard masks must share dimensions");
  std::size_t intersection = 0;
  std::size_t set_union = 0;
  const std::size_t n = real_burned.size();
  const std::uint8_t* a = real_burned.data();
  const std::uint8_t* b = simulated_burned.data();
  const std::uint8_t* pre = preburned.data();
  for (std::size_t i = 0; i < n; ++i) {
    if (pre[i]) continue;
    const bool in_a = a[i] != 0;
    const bool in_b = b[i] != 0;
    intersection += in_a && in_b;
    set_union += in_a || in_b;
  }
  if (set_union == 0) return 1.0;
  return static_cast<double>(intersection) / static_cast<double>(set_union);
}

double jaccard_at(const firelib::IgnitionMap& real_map,
                  const firelib::IgnitionMap& simulated_map, double time_min,
                  double preburned_time) {
  // Never-ignited cells hold kNeverIgnited (+inf); a non-finite query time
  // would count them as burned (inf <= inf) and silently skew Eq. (3). Same
  // contract as burned_mask/burned_count, so the fused kernel and the
  // mask-materializing reference below agree on every input.
  ESSNS_REQUIRE(std::isfinite(time_min),
                "jaccard comparison time must be finite");
  ESSNS_REQUIRE(std::isfinite(preburned_time),
                "jaccard preburned horizon must be finite");
  ESSNS_REQUIRE(preburned_time <= time_min,
                "preburned horizon must not exceed the comparison time");
  ESSNS_REQUIRE(real_map.rows() == simulated_map.rows() &&
                    real_map.cols() == simulated_map.cols(),
                "jaccard maps must share dimensions");
  // One pass over the two time maps; membership tests replicate burned_mask
  // (<= threshold) cell for cell, so counts — and the quotient — are
  // identical to the mask-materializing reference path.
  std::size_t intersection = 0;
  std::size_t set_union = 0;
  const std::size_t n = real_map.size();
  const double* real = real_map.data();
  const double* simulated = simulated_map.data();
  for (std::size_t i = 0; i < n; ++i) {
    if (real[i] <= preburned_time) continue;  // preburned before the interval
    const bool in_real = real[i] <= time_min;
    const bool in_simulated = simulated[i] <= time_min;
    intersection += in_real && in_simulated;
    set_union += in_real || in_simulated;
  }
  if (set_union == 0) return 1.0;
  return static_cast<double>(intersection) / static_cast<double>(set_union);
}

double jaccard_at_reference(const firelib::IgnitionMap& real_map,
                            const firelib::IgnitionMap& simulated_map,
                            double time_min, double preburned_time) {
  ESSNS_REQUIRE(std::isfinite(time_min),
                "jaccard comparison time must be finite");
  ESSNS_REQUIRE(std::isfinite(preburned_time),
                "jaccard preburned horizon must be finite");
  ESSNS_REQUIRE(preburned_time <= time_min,
                "preburned horizon must not exceed the comparison time");
  return jaccard(firelib::burned_mask(real_map, time_min),
                 firelib::burned_mask(simulated_map, time_min),
                 firelib::burned_mask(real_map, preburned_time));
}

}  // namespace essns::ess
