// End-to-end sharded-campaign tests. The test binary itself hosts the
// --shard-worker mode (see test_main.cpp), so run_sharded_campaign()'s
// /proc/self/exe re-invocation spawns copies of this binary as workers.
#include "shard/runner.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "service/report.hpp"
#include "synth/catalog.hpp"

namespace essns::shard {
namespace {

// Small but not trivial: 2 terrains x 2 ignitions x 2 seed replicates = 8
// jobs of 16x16 maps, 2 predicted steps each.
const char* kCatalog =
    "terrains=plains,hills\n"
    "sizes=16\n"
    "weather=steady\n"
    "ignitions=center,offset\n"
    "seeds=2\n"
    "steps=2\n";

service::CampaignConfig small_config() {
  service::CampaignConfig config;
  config.job_concurrency = 2;
  config.total_workers = 2;
  config.generations = 2;
  config.population = 8;
  config.offspring = 8;
  config.seed = 77;
  return config;
}

struct CanonicalReports {
  std::string jsonl;
  std::string csv;
  std::string summary;
};

CanonicalReports canonical(const service::CampaignResult& result) {
  const service::ReportOptions zero{/*zero_timings=*/true};
  CanonicalReports reports;
  std::ostringstream jsonl, csv;
  service::write_campaign_jsonl(result, jsonl, zero);
  service::write_campaign_csv(result, csv, zero);
  reports.jsonl = jsonl.str();
  reports.csv = csv.str();
  reports.summary = service::campaign_summary_json(result, zero);
  return reports;
}

service::CampaignResult run_in_process(const service::CampaignConfig& config) {
  const auto workloads =
      synth::generate_catalog(synth::parse_catalog_spec(kCatalog));
  return service::CampaignScheduler(config).run(workloads);
}

TEST(ShardSlice, RoundRobinPartitionIsDisjointAndCovering) {
  const std::size_t total = 11;
  for (std::size_t shards = 1; shards <= 5; ++shards) {
    std::set<std::size_t> seen;
    for (std::size_t k = 0; k < shards; ++k) {
      const auto slice = synth::shard_slice_indices(total, k, shards);
      for (const std::size_t index : slice) {
        EXPECT_EQ(index % shards, k);  // round-robin, not contiguous blocks
        EXPECT_TRUE(seen.insert(index).second) << "index owned twice";
      }
    }
    EXPECT_EQ(seen.size(), total);
  }
  // More shards than workloads: the tail shards own empty slices.
  EXPECT_TRUE(synth::shard_slice_indices(2, 3, 4).empty());
}

TEST(ShardSlice, RejectsIndexOutOfRange) {
  EXPECT_THROW(synth::shard_slice_indices(4, 2, 2), InvalidArgument);
  EXPECT_THROW(synth::shard_slice_indices(4, 0, 0), InvalidArgument);
}

TEST(ShardedCampaign, MergedReportsByteIdenticalToSingleProcess) {
  const service::CampaignConfig config = small_config();
  const CanonicalReports baseline = canonical(run_in_process(config));

  for (const unsigned shards : {1u, 2u, 3u}) {
    ShardedCampaignOptions options;
    options.shards = shards;
    options.config = config;
    options.catalog_text = kCatalog;
    const ShardedCampaignResult sharded = run_sharded_campaign(options);

    EXPECT_TRUE(sharded.all_shards_clean());
    ASSERT_EQ(sharded.shards.size(), shards);
    for (const ShardReport& report : sharded.shards) {
      EXPECT_TRUE(report.clean) << report.error;
      EXPECT_EQ(report.jobs_received, report.jobs_assigned);
      EXPECT_TRUE(report.summary_received);
      EXPECT_GT(report.wall_seconds, 0.0);
    }

    const CanonicalReports merged = canonical(sharded.campaign);
    EXPECT_EQ(merged.jsonl, baseline.jsonl) << "shards=" << shards;
    EXPECT_EQ(merged.csv, baseline.csv) << "shards=" << shards;
    EXPECT_EQ(merged.summary, baseline.summary) << "shards=" << shards;
  }
}

TEST(ShardedCampaign, ByteIdenticalAcrossJobConcurrencyArms) {
  service::CampaignConfig config = small_config();
  for (const unsigned jobs : {1u, 4u}) {
    config.job_concurrency = jobs;
    // The worker split depends on the concurrency actually in flight, so
    // re-render the single-process baseline at the same concurrency: the
    // JSONL "workers" field is part of the byte contract.
    const CanonicalReports arm_baseline = canonical(run_in_process(config));
    ShardedCampaignOptions options;
    options.shards = 2;
    options.config = config;
    options.catalog_text = kCatalog;
    const ShardedCampaignResult sharded = run_sharded_campaign(options);
    EXPECT_TRUE(sharded.all_shards_clean());
    const CanonicalReports merged = canonical(sharded.campaign);
    EXPECT_EQ(merged.jsonl, arm_baseline.jsonl) << "jobs=" << jobs;
    EXPECT_EQ(merged.summary, arm_baseline.summary) << "jobs=" << jobs;
  }
}

TEST(ShardedCampaign, KilledShardCompletesCampaignWithFailedJobs) {
  const service::CampaignConfig config = small_config();
  const service::CampaignResult reference = run_in_process(config);

  ShardedCampaignOptions options;
  options.shards = 2;
  options.config = config;
  options.catalog_text = kCatalog;
  options.debug_crash_shard = 0;
  options.debug_crash_after_jobs = 1;  // stream one job, then _exit(42)
  const ShardedCampaignResult sharded = run_sharded_campaign(options);

  EXPECT_FALSE(sharded.all_shards_clean());
  ASSERT_EQ(sharded.shards.size(), 2u);
  const ShardReport& dead = sharded.shards[0];
  const ShardReport& alive = sharded.shards[1];
  EXPECT_FALSE(dead.clean);
  EXPECT_NE(dead.error.find("exit 42"), std::string::npos) << dead.error;
  EXPECT_EQ(dead.jobs_received, 1u);
  EXPECT_TRUE(alive.clean) << alive.error;

  // The campaign still completed: every job index present exactly once, the
  // surviving shard's jobs bit-identical to the reference run, and the dead
  // shard's unreported jobs synthesized as failures with correct identity.
  const auto& jobs = sharded.campaign.jobs;
  ASSERT_EQ(jobs.size(), reference.jobs.size());
  std::size_t synthesized = 0;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(jobs[i].index, i);
    EXPECT_EQ(jobs[i].workload, reference.jobs[i].workload);
    EXPECT_EQ(jobs[i].seed, reference.jobs[i].seed);
    EXPECT_EQ(jobs[i].workers, reference.jobs[i].workers);
    if (jobs[i].status == service::JobStatus::kFailed) {
      ++synthesized;
      EXPECT_NE(jobs[i].error.find("shard 0 died"), std::string::npos);
      EXPECT_EQ(i % 2, 0u);  // round-robin: shard 0 owns even indices
    } else {
      std::ostringstream got, want;
      service::write_campaign_jsonl({{jobs[i]}, 0, 1, 1}, got,
                                    {/*zero_timings=*/true});
      service::write_campaign_jsonl({{reference.jobs[i]}, 0, 1, 1}, want,
                                    {/*zero_timings=*/true});
      EXPECT_EQ(got.str(), want.str()) << "job " << i;
    }
  }
  EXPECT_EQ(synthesized, dead.jobs_assigned - dead.jobs_received);
  EXPECT_GT(synthesized, 0u);
  EXPECT_EQ(sharded.campaign.failed(), synthesized);
  // succeeded_per_second diverges from jobs_per_second exactly when jobs
  // failed (the satellite metric this PR adds to the summary).
  EXPECT_LT(sharded.campaign.succeeded_per_second(),
            sharded.campaign.jobs_per_second());
}

TEST(ShardedCampaign, MetricsRollupSumsShardScrapes) {
  ShardedCampaignOptions options;
  options.shards = 2;
  options.config = small_config();
  options.catalog_text = kCatalog;
  options.collect_metrics = true;
  const ShardedCampaignResult sharded = run_sharded_campaign(options);
  EXPECT_TRUE(sharded.all_shards_clean());
  ASSERT_FALSE(sharded.metrics.empty());
  // Every job increments campaign.jobs once in whichever worker ran it; the
  // merged rollup must see the campaign-wide total.
  EXPECT_EQ(sharded.metrics.counters.at("campaign.jobs"),
            sharded.campaign.jobs.size());
  const obs::HistogramSnapshot& seconds =
      sharded.metrics.histograms.at("campaign.job_seconds");
  EXPECT_EQ(seconds.count, sharded.campaign.jobs.size());
}

TEST(ShardedCampaign, WritesPerShardTracesAndMergedMetrics) {
  const std::string dir = testing::TempDir();
  ShardedCampaignOptions options;
  options.shards = 2;
  options.config = small_config();
  options.config.trace_out = dir + "/essns_shard_trace.json";
  options.config.metrics_out = dir + "/essns_shard_metrics.json";
  options.catalog_text = kCatalog;
  const ShardedCampaignResult sharded = run_sharded_campaign(options);
  EXPECT_TRUE(sharded.all_shards_clean());
  for (int k = 0; k < 2; ++k) {
    std::ifstream trace(options.config.trace_out + ".shard" +
                        std::to_string(k));
    EXPECT_TRUE(trace.good()) << "missing shard " << k << " trace";
  }
  std::ifstream metrics(options.config.metrics_out);
  ASSERT_TRUE(metrics.good());
  std::ostringstream text;
  text << metrics.rdbuf();
  EXPECT_NE(text.str().find("campaign.jobs"), std::string::npos);
}

TEST(ShardedCampaign, MoreShardsThanJobsStillMerges) {
  service::CampaignConfig config = small_config();
  ShardedCampaignOptions options;
  options.shards = 12;  // > 8 jobs: four shards get empty slices
  options.config = config;
  options.catalog_text = kCatalog;
  const ShardedCampaignResult sharded = run_sharded_campaign(options);
  EXPECT_TRUE(sharded.all_shards_clean());
  EXPECT_EQ(sharded.campaign.jobs.size(), 8u);
  EXPECT_EQ(sharded.campaign.failed(), 0u);
  const CanonicalReports merged = canonical(sharded.campaign);
  const CanonicalReports baseline = canonical(run_in_process(config));
  EXPECT_EQ(merged.jsonl, baseline.jsonl);
}

TEST(ShardedCampaign, RejectsBadOptionsBeforeForking) {
  ShardedCampaignOptions options;
  options.shards = 0;
  EXPECT_THROW((void)run_sharded_campaign(options), InvalidArgument);
  options.shards = 2;
  options.config.method = "essim-monitor";  // not an Optimizer
  options.catalog_text = kCatalog;
  EXPECT_THROW((void)run_sharded_campaign(options), Error);
}

}  // namespace
}  // namespace essns::shard
