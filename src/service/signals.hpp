// Cooperative drain flag for graceful shutdown: SIGINT/SIGTERM set one
// async-signal-safe flag, and the long-running loops that own work — the
// PredictionEngine's job slots, the serve poll loop — check it between
// units of work. In-flight jobs run to completion; queued jobs are disposed
// of as failed "cancelled" records, so a campaign interrupted mid-run still
// assembles every JobRecord and writes its reports/metrics instead of
// losing everything to the default handler.
#pragma once

namespace essns::service {

/// True once a drain has been requested (signal or explicit call). Sticky
/// until reset_drain().
bool drain_requested();

/// Request a drain. Async-signal-safe (one lock-free atomic store), so it
/// doubles as the SIGINT/SIGTERM handler body.
void request_drain();

/// Clear the flag — tests and multi-phase CLI runs that outlive a drain.
void reset_drain();

/// RAII SIGINT/SIGTERM installer: both signals call request_drain() while
/// this object lives; the previous dispositions are restored on
/// destruction. Install once near the top of a campaign/serve entry point
/// (nesting is harmless but pointless — the flag is global).
class ScopedSignalDrain {
 public:
  ScopedSignalDrain();
  ~ScopedSignalDrain();

  ScopedSignalDrain(const ScopedSignalDrain&) = delete;
  ScopedSignalDrain& operator=(const ScopedSignalDrain&) = delete;

 private:
  struct Impl;
  Impl* impl_;
};

}  // namespace essns::service
