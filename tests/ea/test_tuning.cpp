#include "ea/tuning.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "ea/landscapes.hpp"

namespace essns::ea {
namespace {

TEST(StagnationMonitorTest, TriggersAfterWindowWithoutImprovement) {
  StagnationMonitor monitor(3, 1e-6);
  EXPECT_FALSE(monitor.update(0.5));  // first value establishes the baseline
  EXPECT_FALSE(monitor.update(0.5));
  EXPECT_FALSE(monitor.update(0.5));
  EXPECT_TRUE(monitor.update(0.5));   // 3 stalled generations reached
}

TEST(StagnationMonitorTest, ImprovementResetsCounter) {
  StagnationMonitor monitor(2, 1e-6);
  EXPECT_FALSE(monitor.update(0.1));
  EXPECT_FALSE(monitor.update(0.1));
  EXPECT_FALSE(monitor.update(0.2));  // improvement resets
  EXPECT_FALSE(monitor.update(0.2));
  EXPECT_TRUE(monitor.update(0.2));
}

TEST(StagnationMonitorTest, EpsilonIgnoresTinyImprovements) {
  StagnationMonitor monitor(2, 0.1);
  EXPECT_FALSE(monitor.update(0.5));
  EXPECT_FALSE(monitor.update(0.55));  // below epsilon: counts as stalled
  EXPECT_TRUE(monitor.update(0.58));
}

TEST(StagnationMonitorTest, ResetClearsState) {
  StagnationMonitor monitor(1, 0.0);
  monitor.update(1.0);
  monitor.reset();
  EXPECT_EQ(monitor.stalled_generations(), 0);
  EXPECT_FALSE(monitor.update(0.1));  // baseline again after reset
}

TEST(StagnationMonitorTest, RejectsBadParams) {
  EXPECT_THROW(StagnationMonitor(0, 0.1), InvalidArgument);
  EXPECT_THROW(StagnationMonitor(2, -0.1), InvalidArgument);
}

Population make_pop(const std::vector<double>& fitness) {
  Population pop(fitness.size());
  for (std::size_t i = 0; i < fitness.size(); ++i) {
    pop[i].genome = Genome{0.5};
    pop[i].fitness = fitness[i];
  }
  return pop;
}

TEST(IqrMonitorTest, CollapsedWhenSpreadBelowThreshold) {
  IqrMonitor monitor(0.05);
  EXPECT_TRUE(monitor.collapsed(make_pop({0.50, 0.50, 0.51, 0.51})));
  EXPECT_GT(monitor.last_iqr(), 0.0);
}

TEST(IqrMonitorTest, HealthySpreadNotCollapsed) {
  IqrMonitor monitor(0.05);
  EXPECT_FALSE(monitor.collapsed(make_pop({0.1, 0.3, 0.6, 0.9})));
}

TEST(IqrMonitorTest, SmallPopulationsNeverCollapse) {
  IqrMonitor monitor(100.0);
  EXPECT_FALSE(monitor.collapsed(make_pop({0.1, 0.2, 0.3})));
}

TEST(RestartTest, KeepsBestAndInvalidatesRest) {
  Rng rng(1);
  Population pop = make_pop({0.9, 0.1, 0.5, 0.3});
  restart_population(pop, 1, rng);
  // Sorted descending: the kept individual is the 0.9 one.
  EXPECT_DOUBLE_EQ(pop[0].fitness, 0.9);
  for (std::size_t i = 1; i < pop.size(); ++i) {
    EXPECT_TRUE(std::isnan(pop[i].fitness));
    for (double g : pop[i].genome) {
      EXPECT_GE(g, 0.0);
      EXPECT_LT(g, 1.0);
    }
  }
}

TEST(RestartTest, KeepAllIsNoop) {
  Rng rng(1);
  Population pop = make_pop({0.2, 0.4});
  restart_population(pop, 2, rng);
  EXPECT_DOUBLE_EQ(pop[0].fitness, 0.4);  // sorted, but both kept
  EXPECT_DOUBLE_EQ(pop[1].fitness, 0.2);
}

TEST(RestartTest, RejectsKeepBeyondSize) {
  Rng rng(1);
  Population pop = make_pop({0.1});
  EXPECT_THROW(restart_population(pop, 2, rng), InvalidArgument);
}

TEST(EssimDeTuningTest, RestartsACollapsedDeRun) {
  // Force a tiny population onto the sphere with zero mutation diversity so
  // the IQR collapses, then check the hook reports interventions.
  Rng rng(42);
  DeConfig cfg;
  cfg.population_size = 12;
  cfg.crossover_rate = 0.1;
  cfg.differential_weight = 0.3;
  const DeResult r = run_de(
      cfg, 3, landscapes::batch(landscapes::sphere), {60, 2.0}, rng, nullptr,
      make_essim_de_tuning(5, 1e-4, 0.05, 2, rng));
  EXPECT_GT(r.tuning_events, 0);
  for (const auto& ind : r.population) EXPECT_TRUE(ind.evaluated());
}

TEST(EssimDeTuningTest, QuietWhenProgressing) {
  // A healthy improving run with a loose stagnation window and a tiny IQR
  // threshold should rarely trigger.
  Rng rng(43);
  DeConfig cfg;
  cfg.population_size = 16;
  const DeResult r = run_de(
      cfg, 5, landscapes::batch(landscapes::rastrigin), {10, 2.0}, rng,
      nullptr, make_essim_de_tuning(20, 1e-9, 1e-12, 2, rng));
  EXPECT_EQ(r.tuning_events, 0);
}

}  // namespace
}  // namespace essns::ea
