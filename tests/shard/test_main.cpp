// Custom gtest main: this binary doubles as the --shard-worker host that
// run_sharded_campaign() re-invokes via /proc/self/exe, so the worker
// dispatch must run before gtest sees argv (and the module links GTest::gtest
// without gtest_main).
#include <gtest/gtest.h>

#include <cstring>

#include "shard/runner.hpp"

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--shard-worker") == 0)
    return essns::shard::shard_worker_main();
  testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
