#include "ess/simulation_service.hpp"

#include <bit>

#include "common/error.hpp"
#include "ess/fitness.hpp"

namespace essns::ess {
namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv1a(std::uint64_t hash, std::uint64_t value) {
  for (int byte = 0; byte < 8; ++byte) {
    hash ^= (value >> (byte * 8)) & 0xffULL;
    hash *= kFnvPrime;
  }
  return hash;
}

/// Content fingerprint of an ignition map (dimensions + cell bit patterns).
/// Computed once per batch, it guards the cache against pointer reuse.
std::uint64_t fingerprint(const firelib::IgnitionMap& map) {
  std::uint64_t hash = kFnvOffset;
  hash = fnv1a(hash, static_cast<std::uint64_t>(map.rows()));
  hash = fnv1a(hash, static_cast<std::uint64_t>(map.cols()));
  const double* data = map.data();
  for (std::size_t i = 0; i < map.size(); ++i)
    hash = fnv1a(hash, std::bit_cast<std::uint64_t>(data[i]));
  return hash;
}

std::uint64_t param_bits(double value) {
  return std::bit_cast<std::uint64_t>(value == 0.0 ? 0.0 : value);
}

}  // namespace

ScenarioKey make_scenario_key(const firelib::Scenario& scenario) {
  ScenarioKey key;
  key.bits[0] = static_cast<std::uint64_t>(
      static_cast<std::int64_t>(scenario.model));
  key.bits[1] = param_bits(scenario.wind_speed);
  key.bits[2] = param_bits(scenario.wind_dir);
  key.bits[3] = param_bits(scenario.m1);
  key.bits[4] = param_bits(scenario.m10);
  key.bits[5] = param_bits(scenario.m100);
  key.bits[6] = param_bits(scenario.mherb);
  key.bits[7] = param_bits(scenario.slope);
  key.bits[8] = param_bits(scenario.aspect);
  return key;
}

std::size_t ScenarioKeyHash::operator()(const ScenarioKey& key) const {
  std::uint64_t hash = kFnvOffset;
  for (const std::uint64_t word : key.bits) hash = fnv1a(hash, word);
  return static_cast<std::size_t>(hash);
}

SimulationService::SimulationService(const firelib::FireEnvironment& env,
                                     unsigned workers)
    : env_(&env), propagator_(spread_model_) {
  ESSNS_REQUIRE(workers >= 1, "need at least one worker");
  workspaces_.resize(workers > 1 ? workers + 1 : 1);
  if (workers > 1) {
    pool_ = std::make_unique<
        parallel::MasterWorker<const SimulationRequest*, SimulationResult>>(
        workers, [this](unsigned id, const SimulationRequest* const& req) {
          return run_one(id + 1, *req);
        });
  }
}

SimulationService::~SimulationService() = default;

unsigned SimulationService::workers() const {
  return pool_ ? pool_->worker_count() : 1;
}

void SimulationService::set_cache_enabled(bool enabled) {
  cache_enabled_ = enabled;
  if (!enabled) {
    cache_.clear();
    cache_context_ = CacheContext{};
  }
}

void SimulationService::set_reference_kernels(bool reference) {
  propagator_.set_reference_sweep(reference);
  reference_fitness_ = reference;
}

void SimulationService::set_sweep_queue(firelib::SweepQueue queue) {
  propagator_.set_sweep_queue(queue);
}

firelib::SweepQueue SimulationService::sweep_queue() const {
  return propagator_.sweep_queue();
}

firelib::IgnitionMap SimulationService::simulate(
    const firelib::Scenario& scenario, const firelib::IgnitionMap& start,
    double end_time) {
  simulations_.fetch_add(1, std::memory_order_relaxed);
  return propagator_.propagate(*env_, scenario, start, end_time,
                               workspaces_[0]);
}

SimulationResult SimulationService::run_one(unsigned worker_id,
                                            const SimulationRequest& req) {
  ESSNS_REQUIRE(req.scenario && req.start, "request scenario/start must be set");
  simulations_.fetch_add(1, std::memory_order_relaxed);
  firelib::PropagationWorkspace& workspace = workspaces_[worker_id];
  const firelib::IgnitionMap& simulated = propagator_.propagate(
      *env_, *req.scenario, *req.start, req.end_time, workspace);
  SimulationResult result;
  if (req.target) {
    result.fitness =
        reference_fitness_
            ? jaccard_at_reference(*req.target, simulated, req.end_time,
                                   req.start_time)
            : jaccard_at(*req.target, simulated, req.end_time, req.start_time);
  }
  if (req.keep_map) result.map = simulated;
  return result;
}

std::vector<SimulationResult> SimulationService::run_batch_uncached(
    const std::vector<const SimulationRequest*>& requests) {
  if (pool_) return pool_->evaluate(requests);
  std::vector<SimulationResult> results;
  results.reserve(requests.size());
  for (const SimulationRequest* req : requests)
    results.push_back(run_one(0, *req));
  return results;
}

std::vector<SimulationResult> SimulationService::run_batch(
    const std::vector<SimulationRequest>& requests) {
  if (requests.empty()) return {};

  // The cache applies to homogeneous batches — one (start, target, interval)
  // shared by every request, which is what fitness_batch / simulate_batch
  // produce. Mixed batches bypass it.
  bool homogeneous = cache_enabled_;
  const SimulationRequest& first = requests.front();
  for (const SimulationRequest& req : requests) {
    ESSNS_REQUIRE(req.scenario && req.start,
                  "request scenario/start must be set");
    if (req.start != first.start || req.target != first.target ||
        req.start_time != first.start_time || req.end_time != first.end_time)
      homogeneous = false;
  }
  if (homogeneous) return run_batch_cached(requests);

  std::vector<const SimulationRequest*> tasks;
  tasks.reserve(requests.size());
  for (const SimulationRequest& req : requests) tasks.push_back(&req);
  return run_batch_uncached(tasks);
}

std::vector<SimulationResult> SimulationService::run_batch_cached(
    const std::vector<SimulationRequest>& requests) {
  const SimulationRequest& first = requests.front();
  CacheContext context;
  context.start = first.start;
  context.target = first.target;
  context.start_time = first.start_time;
  context.end_time = first.end_time;
  context.start_fingerprint = fingerprint(*first.start);
  context.target_fingerprint = first.target ? fingerprint(*first.target) : 0;
  context.valid = true;
  if (!(context == cache_context_)) {
    cache_.clear();
    cache_context_ = context;
  }

  // Plan the batch on the master thread: serve what the cache can, collapse
  // in-batch duplicates onto one scheduled simulation, simulate the rest.
  constexpr std::size_t kFromCache = static_cast<std::size_t>(-1);
  std::vector<SimulationResult> results(requests.size());
  std::vector<std::size_t> slot_of(requests.size(), kFromCache);
  std::vector<SimulationRequest> scheduled;
  std::vector<ScenarioKey> scheduled_keys;
  std::unordered_map<ScenarioKey, std::size_t, ScenarioKeyHash> in_batch;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const SimulationRequest& req = requests[i];
    const ScenarioKey key = make_scenario_key(*req.scenario);
    const auto cached = cache_.find(key);
    const bool satisfied = cached != cache_.end() &&
                           (!req.target || cached->second.fitness) &&
                           (!req.keep_map || cached->second.map);
    if (satisfied) {
      if (req.target) results[i].fitness = *cached->second.fitness;
      if (req.keep_map) results[i].map = *cached->second.map;
      ++cache_hits_;
      continue;
    }
    const auto [it, inserted] = in_batch.try_emplace(key, scheduled.size());
    if (inserted) {
      scheduled.push_back(req);
      scheduled_keys.push_back(key);
      ++cache_misses_;
    } else {
      // A duplicate widens the scheduled request rather than re-simulating.
      scheduled[it->second].keep_map |= req.keep_map;
      ++cache_hits_;
    }
    slot_of[i] = it->second;
  }

  std::vector<const SimulationRequest*> tasks;
  tasks.reserve(scheduled.size());
  for (const SimulationRequest& req : scheduled) tasks.push_back(&req);
  std::vector<SimulationResult> simulated = run_batch_uncached(tasks);

  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (slot_of[i] == kFromCache) continue;
    const SimulationRequest& req = requests[i];
    const SimulationResult& sim = simulated[slot_of[i]];
    if (req.target) results[i].fitness = sim.fitness;
    if (req.keep_map) results[i].map = sim.map;
  }
  for (std::size_t slot = 0; slot < scheduled.size(); ++slot) {
    const ScenarioKey& key = scheduled_keys[slot];
    const bool known = cache_.count(key) != 0;
    if (!known && cache_.size() >= cache_capacity_) continue;
    CacheEntry& entry = cache_[key];
    if (scheduled[slot].target) entry.fitness = simulated[slot].fitness;
    if (scheduled[slot].keep_map && !entry.map)
      entry.map = std::move(simulated[slot].map);
  }
  return results;
}

std::vector<firelib::IgnitionMap> SimulationService::simulate_batch(
    const std::vector<firelib::Scenario>& scenarios,
    const firelib::IgnitionMap& start, double end_time) {
  std::vector<SimulationRequest> requests(scenarios.size());
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    requests[i].scenario = &scenarios[i];
    requests[i].start = &start;
    requests[i].end_time = end_time;
  }
  std::vector<SimulationResult> results = run_batch(requests);
  std::vector<firelib::IgnitionMap> maps;
  maps.reserve(results.size());
  for (SimulationResult& result : results) maps.push_back(std::move(result.map));
  return maps;
}

std::vector<double> SimulationService::fitness_batch(
    const std::vector<firelib::Scenario>& scenarios,
    const firelib::IgnitionMap& start, const firelib::IgnitionMap& target,
    double start_time, double end_time) {
  std::vector<SimulationRequest> requests(scenarios.size());
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    requests[i].scenario = &scenarios[i];
    requests[i].start = &start;
    requests[i].start_time = start_time;
    requests[i].end_time = end_time;
    requests[i].target = &target;
    requests[i].keep_map = false;
  }
  std::vector<SimulationResult> results = run_batch(requests);
  std::vector<double> fitness;
  fitness.reserve(results.size());
  for (const SimulationResult& result : results)
    fitness.push_back(result.fitness);
  return fitness;
}

}  // namespace essns::ess
