#include "synth/weather.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "synth/workloads.hpp"

namespace essns::synth {
namespace {

TEST(DiurnalWeatherTest, TemperaturePeaksMidAfternoon) {
  DiurnalWeatherConfig cfg;
  cfg.gust_sigma_mph = 0.0;
  cfg.dir_sigma_deg = 0.0;
  Rng rng(1);
  const auto dawn = diurnal_weather(cfg, 3.0, rng);
  const auto noonish = diurnal_weather(cfg, 15.0, rng);
  const auto evening = diurnal_weather(cfg, 21.0, rng);
  EXPECT_NEAR(dawn.temperature_f, cfg.temp_min_f, 1e-9);
  EXPECT_NEAR(noonish.temperature_f, cfg.temp_max_f, 1e-9);
  EXPECT_GT(evening.temperature_f, dawn.temperature_f);
  EXPECT_LT(evening.temperature_f, noonish.temperature_f);
}

TEST(DiurnalWeatherTest, HumidityRunsOppositeToTemperature) {
  DiurnalWeatherConfig cfg;
  cfg.gust_sigma_mph = 0.0;
  Rng rng(2);
  const auto dawn = diurnal_weather(cfg, 3.0, rng);
  const auto afternoon = diurnal_weather(cfg, 15.0, rng);
  EXPECT_GT(dawn.humidity_pct, afternoon.humidity_pct);
  EXPECT_NEAR(afternoon.humidity_pct, cfg.rh_min_pct, 1e-9);
}

TEST(DiurnalWeatherTest, WindNeverNegative) {
  DiurnalWeatherConfig cfg;
  cfg.wind_base_mph = 0.5;
  cfg.gust_sigma_mph = 5.0;  // heavy gust noise
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    const auto w = diurnal_weather(cfg, (i % 24) + 0.5, rng);
    EXPECT_GE(w.wind_speed_mph, 0.0);
    EXPECT_GE(w.wind_dir_deg, 0.0);
    EXPECT_LT(w.wind_dir_deg, 360.0);
  }
}

TEST(DiurnalWeatherTest, RejectsBadInput) {
  DiurnalWeatherConfig cfg;
  Rng rng(1);
  EXPECT_THROW(diurnal_weather(cfg, 24.0, rng), InvalidArgument);
  EXPECT_THROW(diurnal_weather(cfg, -1.0, rng), InvalidArgument);
  DiurnalWeatherConfig inverted;
  inverted.temp_max_f = 40.0;
  inverted.temp_min_f = 80.0;
  EXPECT_THROW(diurnal_weather(inverted, 12.0, rng), InvalidArgument);
}

TEST(FineDeadFuelMoistureTest, DryHotAirGivesLowMoisture) {
  const double dry = fine_dead_fuel_moisture(95.0, 10.0);
  const double humid = fine_dead_fuel_moisture(60.0, 90.0);
  EXPECT_LT(dry, 6.0);
  EXPECT_GT(humid, 15.0);
}

TEST(FineDeadFuelMoistureTest, MonotoneInHumidity) {
  double previous = 0.0;
  for (double rh = 5.0; rh <= 95.0; rh += 10.0) {
    const double emc = fine_dead_fuel_moisture(75.0, rh);
    EXPECT_GE(emc, previous - 0.6)  // piecewise joins allow small dips
        << "rh " << rh;
    previous = emc;
  }
}

TEST(FineDeadFuelMoistureTest, NeverBelowOnePercent) {
  EXPECT_GE(fine_dead_fuel_moisture(120.0, 0.0), 1.0);
  EXPECT_THROW(fine_dead_fuel_moisture(70.0, 150.0), InvalidArgument);
}

TEST(TimelagTest, OneHourFuelTracksFasterThanHundredHour) {
  // Starting at 20%, equilibrium 5%: after one hour the 1-h class moved
  // ~63% of the way, the 100-h class ~1%.
  const double m1 = timelag_response(20.0, 5.0, 1.0, 1.0);
  const double m100 = timelag_response(20.0, 5.0, 1.0, 100.0);
  EXPECT_NEAR(m1, 20.0 - 15.0 * (1.0 - std::exp(-1.0)), 1e-9);
  EXPECT_GT(m100, 19.0);
  EXPECT_LT(m1, m100);
}

TEST(TimelagTest, ConvergesToEquilibrium) {
  double m = 30.0;
  for (int i = 0; i < 100; ++i) m = timelag_response(m, 8.0, 1.0, 10.0);
  EXPECT_NEAR(m, 8.0, 0.01);
}

TEST(TimelagTest, ZeroDtIsIdentity) {
  EXPECT_DOUBLE_EQ(timelag_response(12.0, 5.0, 0.0, 1.0), 12.0);
  EXPECT_THROW(timelag_response(12.0, 5.0, 1.0, 0.0), InvalidArgument);
}

TEST(DiurnalScenariosTest, ProducesValidScenarioPerStep) {
  DiurnalWeatherConfig cfg;
  firelib::Scenario base;
  base.model = 1;
  base.m1 = base.m10 = base.m100 = 8.0;
  base.mherb = 60.0;
  Rng rng(5);
  const auto seq = diurnal_scenarios(cfg, base, 10.0, 60.0, 6, rng);
  ASSERT_EQ(seq.size(), 6u);
  const auto& space = firelib::ScenarioSpace::table1();
  for (const auto& s : seq) {
    EXPECT_TRUE(space.is_valid(s));
    EXPECT_EQ(s.model, base.model);  // fuel model fixed
  }
}

TEST(DiurnalScenariosTest, AfternoonDryingLowersM1) {
  DiurnalWeatherConfig cfg;
  cfg.gust_sigma_mph = 0.0;
  firelib::Scenario base;
  base.model = 1;
  base.m1 = base.m10 = base.m100 = 25.0;  // wet morning start
  base.mherb = 60.0;
  Rng rng(6);
  // Six hours from 09:00: deep into the afternoon minimum.
  const auto seq = diurnal_scenarios(cfg, base, 9.0, 60.0, 6, rng);
  EXPECT_LT(seq.back().m1, seq.front().m1);
  // 1-h responds faster than 100-h.
  EXPECT_LT(seq.back().m1, seq.back().m100);
}

TEST(DiurnalWorkloadTest, GeneratesAndBurns) {
  const Workload workload = make_diurnal(32);
  ASSERT_EQ(workload.scenario_sequence.size(), 5u);
  Rng rng(7);
  const GroundTruth truth = generate_truth(workload, rng);
  EXPECT_EQ(truth.steps(), 5);
  EXPECT_GT(firelib::burned_count(truth.fire_lines.back(),
                                  truth.time_of(truth.steps())),
            10u);
  // The recorded hidden scenarios match the sequence.
  for (int i = 1; i <= truth.steps(); ++i)
    EXPECT_EQ(truth.scenario_at[static_cast<size_t>(i)],
              workload.scenario_sequence[static_cast<size_t>(i) - 1]);
}

TEST(GenerateTruthTest, DispatchesOnSequencePresence) {
  const Workload plains = make_plains(24);
  EXPECT_TRUE(plains.scenario_sequence.empty());
  Rng rng(8);
  const GroundTruth truth = generate_truth(plains, rng);
  EXPECT_EQ(truth.steps(), plains.truth_config.steps);
}

TEST(PerStepGroundTruthTest, ValidatesSequence) {
  firelib::FireEnvironment env(24, 24, 100.0);
  GroundTruthConfig cfg;
  cfg.steps = 3;
  cfg.ignition = {12, 12};
  Rng rng(9);
  std::vector<firelib::Scenario> too_few(2);
  EXPECT_THROW(generate_ground_truth(env, cfg, too_few, rng),
               InvalidArgument);
  std::vector<firelib::Scenario> invalid(3);
  invalid[1].wind_speed = 500.0;
  EXPECT_THROW(generate_ground_truth(env, cfg, invalid, rng),
               InvalidArgument);
}

}  // namespace
}  // namespace essns::synth
