// Island demo: the ESSIM two-level hierarchy (Monitor / Masters / Workers)
// in isolation — several GA islands with ring migration searching one
// Optimization Stage step, reported island by island.
//
// Also shows why the paper's ESS-NS dropped the islands: a single NS-GA
// maintains comparable behavioural diversity without migration machinery.
#include <cstdio>

#include "core/ns_ga.hpp"
#include "ess/essim.hpp"
#include "ess/evaluator.hpp"
#include "metrics/diversity.hpp"
#include "synth/workloads.hpp"

int main() {
  using namespace essns;

  synth::Workload workload = synth::make_plains(48);
  Rng truth_rng(3);
  const synth::GroundTruth truth = synth::generate_ground_truth(
      workload.environment, workload.truth_config, truth_rng);
  ess::ScenarioEvaluator evaluator(workload.environment);
  evaluator.set_step({&truth.fire_lines[0], &truth.fire_lines[1], 0.0,
                      truth.step_minutes});
  auto evaluate = evaluator.batch_evaluator();

  std::printf("ESSIM-EA island sweep (one OS step, 30 generations total):\n");
  for (int islands : {1, 2, 4}) {
    ess::IslandOptimizer::Options opt;
    opt.islands = islands;
    opt.migration_interval = 5;
    opt.migrants = 2;
    opt.ga.population_size = 24 / static_cast<std::size_t>(islands) < 4
                                 ? 6
                                 : 24 / static_cast<std::size_t>(islands);
    opt.ga.offspring_count = opt.ga.population_size;
    opt.ga.elite_count = 1;
    ess::IslandOptimizer optimizer(opt);
    Rng rng(11);
    const auto out = optimizer.optimize(firelib::kParamCount, evaluate,
                                        {30, 0.99}, rng);
    ea::Population solutions = out.solutions;
    std::printf(
        "  %d island(s) x pop %zu : best fitness %.3f, solution diversity "
        "%.3f, %zu evaluations\n",
        islands, opt.ga.population_size, out.best.fitness,
        metrics::genotypic_diversity(solutions), out.evaluations);
  }

  std::printf("\nSingle NS-GA (no islands), same budget:\n");
  core::NsGaConfig ns;
  ns.population_size = 24;
  ns.offspring_count = 24;
  Rng rng(11);
  const auto result = core::run_ns_ga(ns, firelib::kParamCount, evaluate,
                                      {30, 0.99}, rng);
  ea::Population best_set = result.best_set;
  std::printf(
      "  best fitness %.3f, bestSet diversity %.3f, %zu evaluations\n",
      result.max_fitness, metrics::genotypic_diversity(best_set),
      result.evaluations);
  std::printf(
      "\nNS keeps the solution set spread out by construction, which is the\n"
      "paper's §III-A argument for simplifying back to one Master/Worker\n"
      "level.\n");
  return 0;
}
