// EXP-B7 — observability overhead: the acceptance bench for the obs layer's
// two contracts on the uniform-sweep hot path.
//
//   1. Near-free when off: the disabled path (no recorder, no registry) is a
//      couple of relaxed atomic loads per instrumentation site, so the
//      instrumented sweep must run at its PR-6 speed. Measured as an
//      enabled/disabled wall-clock ratio with an asserted bound — loose
//      enough for timer noise, tight enough to catch an accidental lock or
//      allocation on the hot path.
//   2. Result-neutral when on: the ignition maps produced with tracing +
//      metrics enabled are bit-identical to the disabled run's.
//
// Any violated bound or map divergence makes the binary exit nonzero, which
// is how CI enforces both contracts. The disabled arm is timed twice —
// before and after the enabled arm — and the faster of the two is used as
// the baseline, so ambient machine drift inflates rather than masks the
// reported overhead.
//
// Flags:
//   --quick            smaller grid/rounds (CI Debug job)
//   --max-overhead X   enabled/disabled ratio bound (default 1.5)
//   --out PATH         JSON output path (default BENCH_obs.json)
//
// Plain main on purpose (no Google Benchmark) so the target always builds.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "firelib/propagator.hpp"
#include "obs/trace.hpp"
#include "synth/ground_truth.hpp"
#include "synth/workloads.hpp"

namespace {

using namespace essns;

struct Arm {
  double seconds = 0.0;
  std::vector<firelib::IgnitionMap> maps;  // one per scenario, last round
};

/// One timed pass over the batch: `rounds` full sweeps per scenario, keeping
/// the final maps for the bit-identity check.
Arm run_arm(const firelib::FireEnvironment& env,
            const std::vector<firelib::Scenario>& batch,
            const firelib::IgnitionMap& start, double horizon, int rounds) {
  const firelib::FireSpreadModel model;
  firelib::FirePropagator propagator(model);
  firelib::PropagationWorkspace workspace;
  Arm arm;
  Stopwatch watch;
  for (int round = 0; round < rounds; ++round)
    for (const firelib::Scenario& scenario : batch)
      propagator.propagate(env, scenario, start, horizon, workspace);
  arm.seconds = watch.elapsed_seconds();
  for (const firelib::Scenario& scenario : batch)
    arm.maps.push_back(
        propagator.propagate(env, scenario, start, horizon, workspace));
  return arm;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  double max_overhead = 1.5;
  const char* json_path = "BENCH_obs.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--max-overhead") == 0 && i + 1 < argc) {
      max_overhead = std::atof(argv[++i]);
      if (max_overhead <= 1.0) {
        std::fprintf(stderr, "--max-overhead expects a ratio > 1.0\n");
        return 1;
      }
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 1;
    }
  }

  // A single uniform sweep is microseconds, so each timed arm needs
  // thousands of them to rise above timer noise (~80 ms/arm quick,
  // ~350 ms/arm full).
  const int grid = 64;
  const std::size_t scenarios = quick ? 16 : 24;
  const int rounds = quick ? 400 : 1200;

  const synth::Workload workload = synth::make_plains(grid);
  const firelib::FireEnvironment& env = workload.environment;
  Rng truth_rng(5);
  const synth::GroundTruth truth = synth::generate_ground_truth(
      env, workload.truth_config, truth_rng);
  const firelib::IgnitionMap& start = truth.fire_lines[0];
  const double horizon = truth.step_minutes;

  const auto& space = firelib::ScenarioSpace::table1();
  Rng rng(2022);
  std::vector<firelib::Scenario> batch;
  for (std::size_t i = 0; i < scenarios; ++i)
    batch.push_back(space.sample(rng));

  std::printf(
      "obs overhead benchmark: %dx%d uniform sweeps, %zu scenarios x %d "
      "rounds (%s), bound %.2fx\n",
      grid, grid, scenarios, rounds, quick ? "quick" : "full", max_overhead);

  // Warm the caches once outside every timed arm.
  run_arm(env, batch, start, horizon, 1);

  // disabled -> enabled -> disabled again; baseline = min of the two
  // disabled arms so machine drift cannot hide real overhead.
  const Arm disabled_first = run_arm(env, batch, start, horizon, rounds);

  obs::TraceRecorder recorder(1 << 12);
  obs::MetricsRegistry registry;
  obs::install_trace_recorder(&recorder);
  obs::install_metrics_registry(&registry);
  const Arm enabled = run_arm(env, batch, start, horizon, rounds);
  obs::install_trace_recorder(nullptr);
  obs::install_metrics_registry(nullptr);

  const Arm disabled_second = run_arm(env, batch, start, horizon, rounds);

  const double disabled_seconds =
      std::min(disabled_first.seconds, disabled_second.seconds);
  const double overhead =
      disabled_seconds > 0.0 ? enabled.seconds / disabled_seconds : 0.0;
  const bool within_bound = overhead <= max_overhead;

  std::size_t divergences = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (!(enabled.maps[i] == disabled_first.maps[i])) ++divergences;
    if (!(disabled_second.maps[i] == disabled_first.maps[i])) ++divergences;
  }
  const bool bit_identical = divergences == 0;

  const std::uint64_t sweep_count =
      registry.counter("sweep.count").value();
  const std::uint64_t spans = recorder.recorded();

  std::printf("  disabled %.3fs / %.3fs, enabled %.3fs -> %.3fx overhead\n",
              disabled_first.seconds, disabled_second.seconds, enabled.seconds,
              overhead);
  std::printf(
      "  enabled arm observed %llu sweeps, %llu spans; maps bit-identical: "
      "%s; within bound: %s\n",
      static_cast<unsigned long long>(sweep_count),
      static_cast<unsigned long long>(spans), bit_identical ? "true" : "false",
      within_bound ? "true" : "false");

  std::FILE* out = std::fopen(json_path, "w");
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return 1;
  }
  std::fprintf(out, "{\n  \"benchmark\": \"obs_overhead\",\n");
  std::fprintf(out, "  \"quick\": %s,\n", quick ? "true" : "false");
  std::fprintf(out, "  \"hardware\": {%s},\n",
               benchmain::hardware_json_fields().c_str());
  std::fprintf(out, "  \"grid\": %d,\n  \"scenarios\": %zu,\n", grid,
               scenarios);
  std::fprintf(out, "  \"rounds\": %d,\n", rounds);
  std::fprintf(out, "  \"disabled_seconds_first\": %.6f,\n",
               disabled_first.seconds);
  std::fprintf(out, "  \"disabled_seconds_second\": %.6f,\n",
               disabled_second.seconds);
  std::fprintf(out, "  \"enabled_seconds\": %.6f,\n", enabled.seconds);
  std::fprintf(out, "  \"overhead_ratio\": %.4f,\n", overhead);
  std::fprintf(out, "  \"max_overhead\": %.4f,\n", max_overhead);
  std::fprintf(out, "  \"within_bound\": %s,\n",
               within_bound ? "true" : "false");
  std::fprintf(out, "  \"sweeps_observed\": %llu,\n",
               static_cast<unsigned long long>(sweep_count));
  std::fprintf(out, "  \"spans_recorded\": %llu,\n",
               static_cast<unsigned long long>(spans));
  // Scrape of the enabled arm's registry, for the counter glossary's sake.
  obs::install_metrics_registry(&registry);
  std::fprintf(out, "  %s,\n", benchmain::metrics_json_field().c_str());
  obs::install_metrics_registry(nullptr);
  std::fprintf(out, "  \"bit_identical\": %s\n}\n",
               bit_identical ? "true" : "false");
  std::fclose(out);
  std::printf("wrote %s\n", json_path);
  return bit_identical && within_bound ? 0 : 1;
}
