// EXP-D — diversity over generations: the premature-convergence /
// population-stagnation behaviour of §II-B, measured on one real prediction
// step. For GA, DE, DE+tuning and NS-GA the genotypic diversity (mean
// pairwise genome distance) and fitness IQR (the ESSIM-DE tuning metric) are
// reported every few generations.
//
// Expected shape: GA and DE diversity collapse toward 0 (DE+tuning saws back
// up on restarts); NS-GA diversity stays high for the whole run.
#include <cstdio>

#include "common/table.hpp"
#include "core/ns_ga.hpp"
#include "ea/de.hpp"
#include "ea/ga.hpp"
#include "ea/tuning.hpp"
#include "ess/evaluator.hpp"
#include "metrics/diversity.hpp"
#include "synth/workloads.hpp"

int main() {
  using namespace essns;

  constexpr int kGenerations = 40;
  constexpr int kReportEvery = 5;
  constexpr std::size_t kPop = 24;

  synth::Workload workload = synth::make_plains(48);
  Rng truth_rng(3);
  const synth::GroundTruth truth = synth::generate_ground_truth(
      workload.environment, workload.truth_config, truth_rng);
  ess::ScenarioEvaluator evaluator(workload.environment);
  evaluator.set_step({&truth.fire_lines[0], &truth.fire_lines[1], 0.0,
                      truth.step_minutes});
  auto evaluate = evaluator.batch_evaluator();
  const ea::StopCondition stop{kGenerations, 2.0};  // never stop on fitness

  struct Run {
    std::string name;
    metrics::TrajectoryRecorder recorder;
    int collapse = -1;
  };
  std::vector<Run> runs;

  {
    Run run{"ESS-GA", {}, -1};
    Rng rng(21);
    ea::GaConfig cfg;
    cfg.population_size = kPop;
    cfg.offspring_count = kPop;
    ea::run_ga(cfg, firelib::kParamCount, evaluate, stop, rng,
               run.recorder.observer());
    runs.push_back(std::move(run));
  }
  {
    Run run{"ESSIM-DE", {}, -1};
    Rng rng(21);
    ea::DeConfig cfg;
    cfg.population_size = kPop;
    ea::run_de(cfg, firelib::kParamCount, evaluate, stop, rng,
               run.recorder.observer());
    runs.push_back(std::move(run));
  }
  {
    Run run{"ESSIM-DE+tuning", {}, -1};
    Rng rng(21);
    ea::DeConfig cfg;
    cfg.population_size = kPop;
    ea::run_de(cfg, firelib::kParamCount, evaluate, stop, rng,
               run.recorder.observer(),
               ea::make_essim_de_tuning(8, 1e-4, 0.01, 4, rng));
    runs.push_back(std::move(run));
  }
  {
    Run run{"ESS-NS", {}, -1};
    Rng rng(21);
    core::NsGaConfig cfg;
    cfg.population_size = kPop;
    cfg.offspring_count = kPop;
    ea::StopCondition ns_stop = stop;
    core::run_ns_ga(cfg, firelib::kParamCount, evaluate, ns_stop, rng,
                    core::fitness_distance, run.recorder.observer());
    runs.push_back(std::move(run));
  }

  for (auto& run : runs) run.collapse = run.recorder.collapse_generation(0.25);

  TextTable diversity_table(
      "EXP-D genotypic diversity by generation (plains, one OS step)");
  std::vector<std::string> header{"Method"};
  for (int g = 0; g <= kGenerations; g += kReportEvery)
    header.push_back("g" + std::to_string(g));
  header.push_back("collapse<25%");
  diversity_table.set_header(header);
  for (const auto& run : runs) {
    std::vector<std::string> row{run.name};
    for (int g = 0; g <= kGenerations; g += kReportEvery)
      row.push_back(
          TextTable::num(run.recorder.rows()[static_cast<size_t>(g)].diversity));
    row.push_back(run.collapse < 0 ? "never" : "g" + std::to_string(run.collapse));
    diversity_table.add_row(row);
  }
  diversity_table.print();

  TextTable iqr_table("EXP-D fitness IQR by generation (ESSIM-DE tuning metric)");
  iqr_table.set_header(header);
  for (const auto& run : runs) {
    std::vector<std::string> row{run.name};
    for (int g = 0; g <= kGenerations; g += kReportEvery)
      row.push_back(
          TextTable::num(run.recorder.rows()[static_cast<size_t>(g)].iqr));
    row.push_back(run.collapse < 0 ? "never" : "g" + std::to_string(run.collapse));
    iqr_table.add_row(row);
  }
  std::printf("\n");
  iqr_table.print();

  TextTable best_table("EXP-D best fitness reached (same runs)");
  best_table.set_header({"Method", "best@g0", "best@final"});
  for (const auto& run : runs) {
    best_table.add_row({run.name,
                        TextTable::num(run.recorder.rows().front().best_fitness),
                        TextTable::num(run.recorder.rows().back().best_fitness)});
  }
  std::printf("\n");
  best_table.print();
  return 0;
}
