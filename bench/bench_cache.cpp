// EXP-B7 — scenario-cache benchmark: the same fixed-seed catalog campaign
// run with the cache off and with the campaign-wide shared cache, at
// job-concurrency 1 and 4, plus a forced-eviction run under a tiny byte
// budget and a warm re-run against the already-filled cache.
//
// Enforced invariants (any violation exits nonzero, which is how CI pins
// the acceptance criteria):
//   - every shared-cache run is bit-identical to the cache-off reference,
//     per job and per predicted step, at every concurrency and budget;
//   - the shared cache never exceeds its configured byte budget, and the
//     tiny-budget run actually evicts (the bound is exercised, not idle).
//
// Reported (BENCH_cache.json): hit-rates (per-job and cache-global), live
// bytes vs budget, evictions, and the campaign wall-clock speedup of
// shared over off on the GA-shaped duplicate-heavy workload. Plain main on
// purpose (no Google Benchmark) so the target always builds.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "cache/scenario_cache.hpp"
#include "service/campaign.hpp"
#include "synth/catalog.hpp"

namespace {

using namespace essns;

struct RunResult {
  std::string name;
  unsigned job_concurrency = 1;
  double wall_seconds = 0.0;
  double job_hit_rate = 0.0;     ///< summed over jobs' step reports
  double global_hit_rate = 0.0;  ///< shared-cache view (incl. cross-job)
  std::size_t cache_bytes = 0;
  std::size_t cache_budget = 0;
  std::size_t evictions = 0;
  std::size_t insertions_rejected = 0;
  bool identical_to_reference = true;
  bool within_budget = true;
  std::vector<std::vector<double>> per_step;  ///< flattened step outcomes
};

std::vector<std::vector<double>> step_signature(
    const service::CampaignResult& result) {
  std::vector<std::vector<double>> signature;
  for (const auto& job : result.jobs) {
    std::vector<double> steps;
    steps.push_back(job.status == service::JobStatus::kSucceeded ? 1.0 : 0.0);
    for (const auto& step : job.result.steps) {
      steps.push_back(step.kign);
      steps.push_back(step.calibration_fitness);
      steps.push_back(step.best_os_fitness);
      steps.push_back(step.prediction_quality);
      steps.push_back(static_cast<double>(step.os_evaluations));
    }
    signature.push_back(std::move(steps));
  }
  return signature;
}

RunResult run_campaign(const std::string& name,
                       const std::vector<synth::Workload>& workloads,
                       cache::CachePolicy policy, unsigned job_concurrency,
                       std::size_t cache_mem_bytes, int generations,
                       std::size_t population,
                       std::shared_ptr<cache::SharedScenarioCache> cache) {
  service::CampaignConfig config;
  config.job_concurrency = job_concurrency;
  config.total_workers = job_concurrency;
  config.generations = generations;
  config.population = population;
  config.offspring = population;
  config.fitness_threshold = 1.1;  // fixed generation budget, no early exit
  config.cache_policy = policy;
  if (cache_mem_bytes != 0) config.cache_mem_bytes = cache_mem_bytes;
  config.shared_cache = std::move(cache);

  const service::CampaignScheduler scheduler(config);
  const service::CampaignResult result = scheduler.run(workloads);

  RunResult run;
  run.name = name;
  run.job_concurrency = job_concurrency;
  run.wall_seconds = result.wall_seconds;
  run.job_hit_rate = result.cache_hit_rate();
  run.global_hit_rate = result.shared_cache_stats.hit_rate();
  run.cache_bytes = result.shared_cache_stats.bytes;
  run.cache_budget = result.cache_mem_bytes;
  run.evictions = result.shared_cache_stats.evictions;
  run.insertions_rejected = result.shared_cache_stats.insertions_rejected;
  run.within_budget = policy != cache::CachePolicy::kShared ||
                      run.cache_bytes <= run.cache_budget;
  run.per_step = step_signature(result);
  return run;
}

void print_run(const RunResult& run, const RunResult& reference) {
  std::printf(
      "  %-14s jobs=%u  %8.3fs  %5.2fx  hit %.3f (global %.3f)  "
      "%6.1f KiB / %.0f KiB  evict %zu%s%s\n",
      run.name.c_str(), run.job_concurrency, run.wall_seconds,
      run.wall_seconds > 0.0 ? reference.wall_seconds / run.wall_seconds : 0.0,
      run.job_hit_rate, run.global_hit_rate,
      static_cast<double>(run.cache_bytes) / 1024.0,
      static_cast<double>(run.cache_budget) / 1024.0, run.evictions,
      run.identical_to_reference ? "" : "  DIVERGED",
      run.within_budget ? "" : "  OVER-BUDGET");
}

}  // namespace

int main(int argc, char** argv) {
  // --quick: smaller maps and budgets for CI smoke tracking.
  bool quick = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;

  // Bench-wide metrics registry: the scrape (cache hit/miss/eviction
  // counters among others) lands in the JSON below.
  obs::MetricsRegistry metrics;
  obs::install_metrics_registry(&metrics);

  synth::CatalogSpec spec;  // default catalog: 8 workloads
  spec.sizes = {quick ? 16 : 24};
  spec.steps = quick ? 3 : 4;
  const int generations = quick ? 4 : 8;
  const std::size_t population = quick ? 12 : 16;
  // Tiny enough that the catalog's working set cannot fit: forces eviction.
  const std::size_t tiny_budget = std::size_t{64} << 10;
  const std::vector<synth::Workload> workloads = synth::generate_catalog(spec);

  std::printf(
      "scenario-cache benchmark: %zu workloads (%s), off vs shared cache\n",
      workloads.size(), quick ? "quick" : "full");

  const RunResult off = run_campaign("off", workloads, cache::CachePolicy::kOff,
                                     1, 0, generations, population, nullptr);

  std::vector<RunResult> runs;
  runs.push_back(run_campaign("shared", workloads,
                              cache::CachePolicy::kShared, 1, 0, generations,
                              population, nullptr));
  runs.push_back(run_campaign("shared", workloads,
                              cache::CachePolicy::kShared, 4, 0, generations,
                              population, nullptr));
  runs.push_back(run_campaign("shared-tiny", workloads,
                              cache::CachePolicy::kShared, 4, tiny_budget,
                              generations, population, nullptr));
  // The duplicate-heavy steady-state workload: the same catalog predicted
  // twice against one cache — the production re-prediction pattern (each
  // new perimeter re-runs the fleet, duplicating most of the previous
  // pass's simulations). Both passes are timed; off pays full price twice.
  auto warm_cache = std::make_shared<cache::SharedScenarioCache>();
  runs.push_back(run_campaign("shared-pass1", workloads,
                              cache::CachePolicy::kShared, 1, 0, generations,
                              population, warm_cache));
  runs.push_back(run_campaign("shared-pass2", workloads,
                              cache::CachePolicy::kShared, 1, 0, generations,
                              population, warm_cache));

  bool all_identical = true;
  bool all_within_budget = true;
  bool tiny_evicted = false;
  for (RunResult& run : runs) {
    run.identical_to_reference = run.per_step == off.per_step;
    all_identical &= run.identical_to_reference;
    all_within_budget &= run.within_budget;
    if (run.name == "shared-tiny")
      tiny_evicted = run.evictions + run.insertions_rejected > 0;
  }

  std::printf("  %-14s jobs=%u  %8.3fs  (reference)\n", off.name.c_str(),
              off.job_concurrency, off.wall_seconds);
  for (const RunResult& run : runs) print_run(run, off);

  const RunResult& shared1 = runs.front();
  const double speedup_cold = shared1.wall_seconds > 0.0
                                  ? off.wall_seconds / shared1.wall_seconds
                                  : 0.0;
  const RunResult& pass1 = runs[runs.size() - 2];
  const RunResult& pass2 = runs.back();
  const double two_pass_shared = pass1.wall_seconds + pass2.wall_seconds;
  const double speedup_repredict =
      two_pass_shared > 0.0 ? 2.0 * off.wall_seconds / two_pass_shared : 0.0;
  std::printf("  shared vs off, single cold pass:           %.2fx\n",
              speedup_cold);
  std::printf("  shared vs off, re-prediction (two passes): %.2fx\n",
              speedup_repredict);
  std::printf("  bit-identical to off across all runs: %s\n",
              all_identical ? "true" : "false");
  std::printf("  within byte budget: %s (tiny-budget run evicted: %s)\n",
              all_within_budget ? "true" : "false",
              tiny_evicted ? "true" : "false");

  const char* json_path = "BENCH_cache.json";
  std::FILE* out = std::fopen(json_path, "w");
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return 1;
  }
  std::fprintf(out, "{\n  \"benchmark\": \"scenario_cache\",\n");
  std::fprintf(out, "  \"hardware\": {%s},\n",
               benchmain::hardware_json_fields().c_str());
  std::fprintf(out, "  %s,\n", benchmain::metrics_json_field().c_str());
  std::fprintf(out, "  \"quick\": %s,\n  \"workloads\": %zu,\n",
               quick ? "true" : "false", workloads.size());
  std::fprintf(out, "  \"grid\": %d,\n  \"generations\": %d,\n",
               spec.sizes.front(), generations);
  std::fprintf(out, "  \"off_wall_seconds\": %.6f,\n", off.wall_seconds);
  std::fprintf(out, "  \"runs\": [\n");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const RunResult& r = runs[i];
    std::fprintf(
        out,
        "    {\"name\": \"%s\", \"job_concurrency\": %u, "
        "\"wall_seconds\": %.6f, \"speedup_vs_off\": %.4f, "
        "\"job_hit_rate\": %.4f, \"global_hit_rate\": %.4f, "
        "\"cache_bytes\": %zu, \"cache_budget_bytes\": %zu, "
        "\"evictions\": %zu, \"insertions_rejected\": %zu, "
        "\"identical_to_off\": %s, \"within_budget\": %s}%s\n",
        r.name.c_str(), r.job_concurrency, r.wall_seconds,
        r.wall_seconds > 0.0 ? off.wall_seconds / r.wall_seconds : 0.0,
        r.job_hit_rate, r.global_hit_rate, r.cache_bytes, r.cache_budget,
        r.evictions, r.insertions_rejected,
        r.identical_to_reference ? "true" : "false",
        r.within_budget ? "true" : "false",
        i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"speedup_cold_vs_off\": %.4f,\n", speedup_cold);
  std::fprintf(out, "  \"speedup_repredict_vs_off\": %.4f,\n",
               speedup_repredict);
  std::fprintf(out, "  \"bit_identical\": %s,\n",
               all_identical ? "true" : "false");
  std::fprintf(out, "  \"within_budget\": %s,\n",
               all_within_budget ? "true" : "false");
  std::fprintf(out, "  \"tiny_budget_evicted\": %s\n}\n",
               tiny_evicted ? "true" : "false");
  std::fclose(out);
  std::printf("wrote %s\n", json_path);
  return all_identical && all_within_budget && tiny_evicted ? 0 : 1;
}
