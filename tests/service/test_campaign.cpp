#include "service/campaign.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>

#include "common/error.hpp"
#include "service/report.hpp"
#include "synth/catalog.hpp"

namespace essns::service {
namespace {

// Tiny but real campaign: 4 distinct fires on 16x16 maps, 3 truth steps
// (2 predicted), small search budget — fast enough for every test below.
std::vector<synth::Workload> tiny_workloads() {
  synth::CatalogSpec spec;
  spec.terrains = {synth::TerrainFamily::kPlains,
                   synth::TerrainFamily::kHills};
  spec.sizes = {16};
  spec.weather = {synth::WeatherRegime::kSteady};
  spec.ignitions = {synth::IgnitionPattern::kCenter,
                    synth::IgnitionPattern::kOffset};
  spec.steps = 3;
  spec.base_seed = 11;
  return synth::generate_catalog(spec);
}

CampaignConfig tiny_config() {
  CampaignConfig config;
  config.generations = 3;
  config.population = 8;
  config.offspring = 8;
  config.seed = 77;
  return config;
}

TEST(CampaignScheduler, RunsEveryJobToCompletion) {
  const auto workloads = tiny_workloads();
  CampaignConfig config = tiny_config();
  config.job_concurrency = 2;
  config.total_workers = 2;
  const CampaignScheduler scheduler(config);
  const CampaignResult result = scheduler.run(workloads);

  ASSERT_EQ(result.jobs.size(), workloads.size());
  EXPECT_EQ(result.succeeded(), workloads.size());
  EXPECT_EQ(result.failed(), 0u);
  EXPECT_GT(result.wall_seconds, 0.0);
  EXPECT_GT(result.jobs_per_second(), 0.0);
  for (std::size_t i = 0; i < result.jobs.size(); ++i) {
    const JobRecord& job = result.jobs[i];
    EXPECT_EQ(job.index, i) << "results must keep submission order";
    EXPECT_EQ(job.workload, workloads[i].name);
    EXPECT_EQ(job.status, JobStatus::kSucceeded);
    EXPECT_TRUE(job.error.empty());
    EXPECT_EQ(job.result.steps.size(), 2u);  // steps=3 -> 2 predicted
    EXPECT_GT(job.elapsed_seconds, 0.0);
    EXPECT_NE(job.seed, 0u);
  }
}

TEST(CampaignScheduler, DeterministicAcrossJobConcurrency) {
  const auto workloads = tiny_workloads();

  auto run_at = [&](unsigned jobs) {
    CampaignConfig config = tiny_config();
    config.job_concurrency = jobs;
    config.total_workers = 4;
    return CampaignScheduler(config).run(workloads);
  };
  const CampaignResult serial = run_at(1);
  const CampaignResult concurrent = run_at(4);

  ASSERT_EQ(serial.jobs.size(), concurrent.jobs.size());
  for (std::size_t i = 0; i < serial.jobs.size(); ++i) {
    const JobRecord& a = serial.jobs[i];
    const JobRecord& b = concurrent.jobs[i];
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.seed, b.seed);
    EXPECT_EQ(a.status, b.status);
    ASSERT_EQ(a.result.steps.size(), b.result.steps.size());
    for (std::size_t s = 0; s < a.result.steps.size(); ++s) {
      // Bit-identical, not approximately equal: the campaign contract.
      EXPECT_EQ(a.result.steps[s].kign, b.result.steps[s].kign);
      EXPECT_EQ(a.result.steps[s].calibration_fitness,
                b.result.steps[s].calibration_fitness);
      EXPECT_EQ(a.result.steps[s].prediction_quality,
                b.result.steps[s].prediction_quality);
      EXPECT_EQ(a.result.steps[s].os_evaluations,
                b.result.steps[s].os_evaluations);
    }
  }
}

TEST(CampaignScheduler, FailedJobIsIsolated) {
  auto workloads = tiny_workloads();
  // Sabotage one job: an out-of-bounds outbreak makes ground-truth
  // generation throw inside that job's pipeline.
  workloads[1].truth_config.ignition = {1000, 1000};
  workloads[1].name = "broken";

  CampaignConfig config = tiny_config();
  config.job_concurrency = 2;
  const CampaignScheduler scheduler(config);
  const CampaignResult result = scheduler.run(workloads);

  ASSERT_EQ(result.jobs.size(), workloads.size());
  EXPECT_EQ(result.failed(), 1u);
  EXPECT_EQ(result.succeeded(), workloads.size() - 1);
  EXPECT_EQ(result.jobs[1].status, JobStatus::kFailed);
  EXPECT_NE(result.jobs[1].error.find("ignition"), std::string::npos)
      << "error text should carry the thrown message, got: "
      << result.jobs[1].error;
  EXPECT_TRUE(result.jobs[1].result.steps.empty());
  for (const std::size_t i : {std::size_t{0}, std::size_t{2}, std::size_t{3}})
    EXPECT_EQ(result.jobs[i].status, JobStatus::kSucceeded);
  EXPECT_GT(result.mean_quality(), 0.0) << "mean skips failed jobs";
}

TEST(CampaignScheduler, SplitsWorkerBudgetAcrossConcurrentJobs) {
  CampaignConfig config = tiny_config();
  config.job_concurrency = 2;
  config.total_workers = 4;
  EXPECT_EQ(CampaignScheduler(config).workers_per_job(8), 2u);
  config.job_concurrency = 8;  // more slots than jobs: split over the jobs
  EXPECT_EQ(CampaignScheduler(config).workers_per_job(2), 2u);
  config.job_concurrency = 16;  // budget exhausted: floor at one worker
  EXPECT_EQ(CampaignScheduler(config).workers_per_job(16), 1u);
}

TEST(CampaignScheduler, ReportsCompletionCallbackOncePerJob) {
  const auto workloads = tiny_workloads();
  std::atomic<int> done{0};
  CampaignConfig config = tiny_config();
  config.job_concurrency = 4;
  config.on_job_done = [&done](const JobRecord&) { ++done; };
  CampaignScheduler(config).run(workloads);
  EXPECT_EQ(done.load(), static_cast<int>(workloads.size()));
}

TEST(CampaignScheduler, KeepsFinalMapsOnRequest) {
  auto workloads = tiny_workloads();
  workloads.erase(workloads.begin() + 1, workloads.end());
  CampaignConfig config = tiny_config();
  config.keep_final_maps = true;
  const CampaignResult result = CampaignScheduler(config).run(workloads);
  ASSERT_EQ(result.jobs.size(), 1u);
  EXPECT_EQ(result.jobs[0].final_probability.rows(), 16);
  EXPECT_EQ(result.jobs[0].final_prediction.rows(), 16);
}

TEST(CampaignScheduler, RejectsNonOptimizerMethods) {
  CampaignConfig config = tiny_config();
  config.method = "essim-monitor";
  EXPECT_THROW(CampaignScheduler{config}, InvalidArgument);
  config.method = "no-such-method";
  EXPECT_THROW(CampaignScheduler{config}, InvalidArgument);
}

TEST(CampaignScheduler, EmptyCampaignIsANoOp) {
  const CampaignResult result =
      CampaignScheduler(tiny_config()).run({});
  EXPECT_TRUE(result.jobs.empty());
  EXPECT_EQ(result.jobs_per_second(), 0.0);
  EXPECT_EQ(result.mean_quality(), 0.0);
}

TEST(CampaignReport, JsonlHasOneLinePerJobWithErrors) {
  auto workloads = tiny_workloads();
  workloads[2].truth_config.ignition = {-5, -5};
  CampaignConfig config = tiny_config();
  const CampaignResult result = CampaignScheduler(config).run(workloads);

  std::ostringstream out;
  write_campaign_jsonl(result, out);
  const std::string text = out.str();

  std::size_t lines = 0;
  for (const char c : text)
    if (c == '\n') ++lines;
  EXPECT_EQ(lines, workloads.size());
  EXPECT_NE(text.find("\"workload\":\"plains16-steady-center-s0\""),
            std::string::npos);
  EXPECT_NE(text.find("\"status\":\"failed\""), std::string::npos);
  EXPECT_NE(text.find("\"error\":"), std::string::npos);
  EXPECT_NE(text.find("\"os_seconds\":"), std::string::npos);
  EXPECT_NE(text.find("\"kign\":"), std::string::npos);
}

TEST(CampaignReport, CsvHasOneRowPerPredictedStep) {
  const auto workloads = tiny_workloads();
  const CampaignResult result =
      CampaignScheduler(tiny_config()).run(workloads);

  std::ostringstream out;
  write_campaign_csv(result, out);
  std::istringstream in(out.str());
  std::string line;
  std::size_t rows = 0;
  while (std::getline(in, line)) ++rows;
  // Header + 2 predicted steps per succeeded job.
  EXPECT_EQ(rows, 1 + workloads.size() * 2);
}

TEST(CampaignReport, SummaryJsonCarriesThroughput) {
  const CampaignResult result =
      CampaignScheduler(tiny_config()).run(tiny_workloads());
  const std::string json = campaign_summary_json(result);
  EXPECT_NE(json.find("\"jobs\":4"), std::string::npos);
  EXPECT_NE(json.find("\"jobs_per_second\":"), std::string::npos);
  EXPECT_NE(json.find("\"mean_quality\":"), std::string::npos);
  EXPECT_NE(json.find("\"cache_policy\":\"step\""), std::string::npos);
  EXPECT_NE(json.find("\"cache_evictions\":"), std::string::npos);
  EXPECT_NE(json.find("\"cache_bytes\":"), std::string::npos);
  // One row per job plus the campaign-wide cache/quality rollup row.
  const TextTable table = campaign_summary_table(result);
  EXPECT_EQ(table.row_count(), result.jobs.size() + 1);
}

TEST(CampaignResultStats, SucceededPerSecondCountsOnlyDeliveredJobs) {
  CampaignResult result;
  result.jobs.resize(4);
  result.jobs[0].status = JobStatus::kSucceeded;
  result.jobs[1].status = JobStatus::kSucceeded;
  result.jobs[2].status = JobStatus::kSucceeded;
  result.jobs[3].status = JobStatus::kFailed;
  result.wall_seconds = 2.0;
  EXPECT_DOUBLE_EQ(result.jobs_per_second(), 2.0);       // 4 disposed / 2s
  EXPECT_DOUBLE_EQ(result.succeeded_per_second(), 1.5);  // 3 delivered / 2s

  result.wall_seconds = 0.0;
  EXPECT_DOUBLE_EQ(result.succeeded_per_second(), 0.0);

  // Both land in the summary JSON, jobs_per_second first.
  result.wall_seconds = 2.0;
  const std::string json = campaign_summary_json(result);
  const auto jps = json.find("\"jobs_per_second\":2");
  const auto sps = json.find("\"succeeded_per_second\":1.5");
  ASSERT_NE(jps, std::string::npos);
  ASSERT_NE(sps, std::string::npos);
  EXPECT_LT(jps, sps);
}

TEST(CampaignReport, ZeroTimingsRendersWallClockFieldsAsZero) {
  const CampaignResult result =
      CampaignScheduler(tiny_config()).run(tiny_workloads());
  const ReportOptions zero{/*zero_timings=*/true};

  std::ostringstream jsonl;
  write_campaign_jsonl(result, jsonl, zero);
  EXPECT_NE(jsonl.str().find("\"elapsed_seconds\":0"), std::string::npos);
  EXPECT_EQ(jsonl.str().find("\"elapsed_seconds\":0."), std::string::npos)
      << "every elapsed field must render exactly as 0";

  const std::string summary = campaign_summary_json(result, zero);
  EXPECT_NE(summary.find("\"wall_seconds\":0,"), std::string::npos);
  EXPECT_NE(summary.find("\"jobs_per_second\":0,"), std::string::npos);
  EXPECT_NE(summary.find("\"succeeded_per_second\":0,"), std::string::npos);
  // The deterministic fields stay untouched: mean_quality renders the same
  // bytes in canonical and wall-clock mode.
  const auto field = [](const std::string& json, const std::string& key) {
    const auto start = json.find(key);
    EXPECT_NE(start, std::string::npos) << key;
    return json.substr(start, json.find(',', start) - start);
  };
  EXPECT_EQ(field(summary, "\"mean_quality\":"),
            field(campaign_summary_json(result), "\"mean_quality\":"));

  // Two runs of the same campaign render identical canonical bytes (the
  // default "wall" mode differs in the timing fields).
  const CampaignResult again =
      CampaignScheduler(tiny_config()).run(tiny_workloads());
  std::ostringstream jsonl_again;
  write_campaign_jsonl(again, jsonl_again, zero);
  EXPECT_EQ(jsonl.str(), jsonl_again.str());
}

TEST(CampaignScheduler, BatchedBackendRendersIdenticalCanonicalBytes) {
  // The backend knob must be invisible in the canonical report: a batched
  // campaign renders byte-for-byte the JSONL and summary a scalar one does.
  // Scoped to cache off|step — under kShared with concurrent jobs the
  // per-step cache_entries/cache_bytes samples are timing-dependent for
  // EITHER backend (the --shards determinism scope).
  const auto workloads = tiny_workloads();
  const ReportOptions zero{/*zero_timings=*/true};
  for (const cache::CachePolicy policy :
       {cache::CachePolicy::kOff, cache::CachePolicy::kStep}) {
    SCOPED_TRACE(cache::to_string(policy));
    auto run_with = [&](firelib::SweepBackend backend) {
      CampaignConfig config = tiny_config();
      config.cache_policy = policy;
      config.backend = backend;
      config.job_concurrency = 2;
      config.total_workers = 2;
      const CampaignResult result = CampaignScheduler(config).run(workloads);
      std::ostringstream jsonl;
      write_campaign_jsonl(result, jsonl, zero);
      return std::make_pair(jsonl.str(), campaign_summary_json(result, zero));
    };
    const auto scalar = run_with(firelib::SweepBackend::kScalar);
    const auto batched = run_with(firelib::SweepBackend::kBatched);
    EXPECT_EQ(scalar.first, batched.first);
    EXPECT_EQ(scalar.second, batched.second);
  }
}

TEST(CampaignScheduler, IndexOffsetAndStrideDefineGlobalJobIdentity) {
  // A sharded worker runs a round-robin slice under offset/stride; each
  // slice job must be bit-identical to the same global index in the full
  // run — this is the whole determinism story of src/shard/.
  const auto workloads = tiny_workloads();
  CampaignConfig config = tiny_config();
  const CampaignResult full = CampaignScheduler(config).run(workloads);

  const std::size_t shards = 2;
  for (std::size_t k = 0; k < shards; ++k) {
    std::vector<synth::Workload> slice;
    for (std::size_t i = k; i < workloads.size(); i += shards)
      slice.push_back(workloads[i]);
    CampaignConfig shard_config = tiny_config();
    shard_config.job_index_offset = k;
    shard_config.job_index_stride = shards;
    const CampaignResult part = CampaignScheduler(shard_config).run(slice);
    ASSERT_EQ(part.jobs.size(), slice.size());
    for (std::size_t i = 0; i < part.jobs.size(); ++i) {
      const JobRecord& a = part.jobs[i];
      const JobRecord& b = full.jobs[k + i * shards];
      EXPECT_EQ(a.index, b.index);
      EXPECT_EQ(a.seed, b.seed);
      ASSERT_EQ(a.result.steps.size(), b.result.steps.size());
      for (std::size_t s = 0; s < a.result.steps.size(); ++s) {
        EXPECT_EQ(a.result.steps[s].prediction_quality,
                  b.result.steps[s].prediction_quality);
        EXPECT_EQ(a.result.steps[s].os_evaluations,
                  b.result.steps[s].os_evaluations);
      }
    }
  }
}

TEST(CampaignScheduler, ForcedWorkersPerJobOverridesTheSplit) {
  CampaignConfig config = tiny_config();
  config.job_concurrency = 2;
  config.total_workers = 8;
  EXPECT_EQ(CampaignScheduler(config).workers_per_job(8), 4u);
  config.forced_workers_per_job = 3;
  EXPECT_EQ(CampaignScheduler(config).workers_per_job(8), 3u);

  const CampaignResult result =
      CampaignScheduler(config).run(tiny_workloads());
  for (const JobRecord& job : result.jobs) EXPECT_EQ(job.workers, 3u);
}

TEST(CampaignScheduler, RejectsZeroStride) {
  CampaignConfig config = tiny_config();
  config.job_index_stride = 0;
  EXPECT_THROW(CampaignScheduler{config}, InvalidArgument);
}

TEST(CampaignScheduler, SharedCacheBitIdenticalToOffAcrossConcurrency) {
  // The acceptance property of the shared cache: every cached value is a
  // byte-exact pure function of its key, so a campaign run with the shared
  // cache — at any job concurrency, even with a budget tiny enough to force
  // eviction — produces bit-identical per-job results to running with the
  // cache off.
  const auto workloads = tiny_workloads();
  constexpr std::size_t kTinyBudget = std::size_t{64} << 10;  // forces eviction

  auto run_with = [&](cache::CachePolicy policy, unsigned jobs,
                      std::size_t mem_bytes) {
    CampaignConfig config = tiny_config();
    config.job_concurrency = jobs;
    config.total_workers = jobs;
    config.cache_policy = policy;
    if (mem_bytes != 0) config.cache_mem_bytes = mem_bytes;
    return CampaignScheduler(config).run(workloads);
  };

  const CampaignResult off = run_with(cache::CachePolicy::kOff, 1, 0);
  ASSERT_EQ(off.succeeded(), workloads.size());
  EXPECT_EQ(off.cache_hits(), 0u);

  struct Case {
    unsigned jobs;
    std::size_t mem_bytes;  // 0 = default budget
  };
  for (const Case c : {Case{1, 0}, Case{4, 0}, Case{1, kTinyBudget},
                       Case{4, kTinyBudget}}) {
    SCOPED_TRACE("jobs=" + std::to_string(c.jobs) +
                 " mem=" + std::to_string(c.mem_bytes));
    const CampaignResult shared =
        run_with(cache::CachePolicy::kShared, c.jobs, c.mem_bytes);
    ASSERT_EQ(shared.jobs.size(), off.jobs.size());
    for (std::size_t i = 0; i < off.jobs.size(); ++i) {
      const JobRecord& a = off.jobs[i];
      const JobRecord& b = shared.jobs[i];
      EXPECT_EQ(a.status, b.status);
      ASSERT_EQ(a.result.steps.size(), b.result.steps.size());
      for (std::size_t s = 0; s < a.result.steps.size(); ++s) {
        // Bit-identical, not approximately equal.
        EXPECT_EQ(a.result.steps[s].kign, b.result.steps[s].kign);
        EXPECT_EQ(a.result.steps[s].calibration_fitness,
                  b.result.steps[s].calibration_fitness);
        EXPECT_EQ(a.result.steps[s].best_os_fitness,
                  b.result.steps[s].best_os_fitness);
        EXPECT_EQ(a.result.steps[s].prediction_quality,
                  b.result.steps[s].prediction_quality);
        EXPECT_EQ(a.result.steps[s].os_evaluations,
                  b.result.steps[s].os_evaluations);
      }
    }
    EXPECT_GT(shared.cache_hits(), 0u);
    EXPECT_LE(shared.shared_cache_stats.bytes, shared.cache_mem_bytes)
        << "shared cache must stay within its byte budget";
    if (c.mem_bytes != 0) {
      EXPECT_GT(shared.shared_cache_stats.evictions +
                    shared.shared_cache_stats.insertions_rejected,
                0u)
          << "tiny budget should force eviction";
    } else {
      EXPECT_GT(shared.shared_cache_stats.entries, 0u);
    }
  }
}

TEST(CampaignScheduler, InjectedSharedCacheWarmsAcrossCampaigns) {
  // A pre-warmed cache handed to a second identical campaign turns nearly
  // every simulation into a hit — the cross-campaign sharing the layer
  // exists for.
  const auto workloads = tiny_workloads();
  CampaignConfig config = tiny_config();
  config.cache_policy = cache::CachePolicy::kShared;
  config.shared_cache = std::make_shared<cache::SharedScenarioCache>();

  const CampaignResult cold = CampaignScheduler(config).run(workloads);
  ASSERT_EQ(cold.succeeded(), workloads.size());
  const CampaignResult warm = CampaignScheduler(config).run(workloads);
  ASSERT_EQ(warm.succeeded(), workloads.size());

  EXPECT_GT(warm.cache_hit_rate(), cold.cache_hit_rate());
  for (std::size_t i = 0; i < cold.jobs.size(); ++i)
    EXPECT_EQ(cold.jobs[i].result.mean_quality(),
              warm.jobs[i].result.mean_quality())
        << "warm hits must not change results";
}

TEST(CampaignReport, JsonEscapeHandlesSpecials) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb"), "a\\nb");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

}  // namespace
}  // namespace essns::service
