// The observability acceptance property: instrumentation is passive. A
// campaign run with tracing + metrics enabled must produce bit-identical
// results — quality, kign, evaluation counts, final maps — to the same
// campaign with observability off, at every worker count and job
// concurrency. CI runs this suite, so a span or counter that perturbs
// results cannot land.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/campaign.hpp"
#include "synth/workloads.hpp"

namespace essns::obs {
namespace {

std::vector<synth::Workload> tiny_workloads() {
  return {synth::make_plains(16, 11), synth::make_hills(16, 23)};
}

service::CampaignConfig tiny_config(unsigned workers,
                                    unsigned job_concurrency) {
  service::CampaignConfig config;
  config.generations = 2;
  config.population = 6;
  config.offspring = 6;
  config.fitness_threshold = 1.1;  // never early-stops: fixed work per run
  config.seed = 77;
  config.total_workers = workers;
  config.job_concurrency = job_concurrency;
  config.keep_final_maps = true;
  return config;
}

void expect_bit_identical(const service::CampaignResult& baseline,
                          const service::CampaignResult& observed) {
  ASSERT_EQ(observed.jobs.size(), baseline.jobs.size());
  for (std::size_t i = 0; i < baseline.jobs.size(); ++i) {
    SCOPED_TRACE("job " + std::to_string(i));
    const service::JobRecord& a = baseline.jobs[i];
    const service::JobRecord& b = observed.jobs[i];
    EXPECT_EQ(a.status, b.status);
    ASSERT_EQ(b.result.steps.size(), a.result.steps.size());
    for (std::size_t s = 0; s < a.result.steps.size(); ++s) {
      SCOPED_TRACE("step " + std::to_string(s));
      const auto& sa = a.result.steps[s];
      const auto& sb = b.result.steps[s];
      // Bit-exact double comparison, not approximate.
      EXPECT_EQ(sa.kign, sb.kign);
      EXPECT_EQ(sa.calibration_fitness, sb.calibration_fitness);
      EXPECT_EQ(sa.best_os_fitness, sb.best_os_fitness);
      EXPECT_EQ(sa.prediction_quality, sb.prediction_quality);
      EXPECT_EQ(sa.os_evaluations, sb.os_evaluations);
      EXPECT_EQ(sa.os_generations, sb.os_generations);
    }
    ASSERT_EQ(b.final_probability.size(), a.final_probability.size());
    EXPECT_EQ(std::memcmp(a.final_probability.data(),
                          b.final_probability.data(),
                          a.final_probability.size() * sizeof(double)),
              0)
        << "final probability maps diverge";
    ASSERT_EQ(b.final_prediction.size(), a.final_prediction.size());
    EXPECT_EQ(std::memcmp(a.final_prediction.data(), b.final_prediction.data(),
                          a.final_prediction.size()),
              0)
        << "final fire lines diverge";
  }
}

TEST(ResultNeutrality, ObservabilityOnMatchesOffBitForBit) {
  const auto workloads = tiny_workloads();

  struct Case {
    unsigned workers;
    unsigned job_concurrency;
  };
  for (const Case c : {Case{1, 1}, Case{2, 1}, Case{2, 2}}) {
    SCOPED_TRACE("workers=" + std::to_string(c.workers) +
                 " jobs=" + std::to_string(c.job_concurrency));

    const service::CampaignResult baseline =
        service::CampaignScheduler(tiny_config(c.workers, c.job_concurrency))
            .run(workloads);
    ASSERT_EQ(baseline.succeeded(), workloads.size());

    // Full observability through the production plumbing: the scheduler
    // installs its own recorder + registry and writes both files.
    const std::string trace_path =
        ::testing::TempDir() + "neutrality_trace.json";
    const std::string metrics_path =
        ::testing::TempDir() + "neutrality_metrics.json";
    service::CampaignConfig observed_config =
        tiny_config(c.workers, c.job_concurrency);
    observed_config.trace_out = trace_path;
    observed_config.metrics_out = metrics_path;
    const service::CampaignResult observed =
        service::CampaignScheduler(observed_config).run(workloads);
    ASSERT_EQ(observed.succeeded(), workloads.size());
    EXPECT_FALSE(tracing_enabled()) << "session must uninstall its recorder";
    EXPECT_FALSE(metrics_enabled()) << "session must uninstall its registry";
    std::remove(trace_path.c_str());
    std::remove(metrics_path.c_str());

    expect_bit_identical(baseline, observed);
  }
}

TEST(ResultNeutrality, MetricsOnlyModeIsAlsoNeutral) {
  // metrics without tracing takes the other half of the enabled branches
  // (e.g. ThreadPool wraps tasks for histograms but records no spans).
  const auto workloads = tiny_workloads();
  const service::CampaignResult baseline =
      service::CampaignScheduler(tiny_config(2, 2)).run(workloads);
  ASSERT_EQ(baseline.succeeded(), workloads.size());

  const std::string metrics_path =
      ::testing::TempDir() + "neutrality_metrics_only.json";
  service::CampaignConfig observed_config = tiny_config(2, 2);
  observed_config.metrics_out = metrics_path;
  const service::CampaignResult observed =
      service::CampaignScheduler(observed_config).run(workloads);
  ASSERT_EQ(observed.succeeded(), workloads.size());
  std::remove(metrics_path.c_str());

  expect_bit_identical(baseline, observed);
}

}  // namespace
}  // namespace essns::obs
