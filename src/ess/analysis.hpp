// Burn-map analysis utilities: perimeter extraction, area/perimeter
// statistics and the Sørensen-Dice similarity — the quantities fire-science
// evaluations report alongside the Jaccard index of Eq. (3).
#pragma once

#include "common/grid.hpp"
#include "firelib/propagator.hpp"

namespace essns::ess {

/// Cells burned at `time_min` that touch (8-neighbourhood) an unburned or
/// off-map cell — the fire line as a cell set.
std::vector<CellIndex> fire_perimeter(const firelib::IgnitionMap& map,
                                      double time_min);

/// Perimeter length in feet: exposed 4-neighbour edges x cell size.
double perimeter_length_ft(const firelib::IgnitionMap& map, double time_min,
                           double cell_size_ft);

/// Burned area in acres (43560 ft^2 / acre).
double burned_area_acres(const firelib::IgnitionMap& map, double time_min,
                         double cell_size_ft);

/// Sørensen-Dice coefficient 2|A∩B| / (|A|+|B|) over burned masks, excluding
/// preburned cells; the companion similarity to Eq. (3)'s Jaccard
/// (monotonically related: S = 2J / (1 + J)).
double sorensen(const Grid<std::uint8_t>& real_burned,
                const Grid<std::uint8_t>& simulated_burned,
                const Grid<std::uint8_t>& preburned);

}  // namespace essns::ess
