#include "parallel/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

namespace essns::parallel {
namespace {

TEST(ThreadPoolTest, SubmitReturnsResult) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 7 * 6; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, SubmitForwardsArguments) {
  ThreadPool pool(2);
  auto f = pool.submit([](int a, int b) { return a + b; }, 2, 3);
  EXPECT_EQ(f.get(), 5);
}

TEST(ThreadPoolTest, PropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, RunsManyTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i)
    futures.push_back(pool.submit([&counter] { ++counter; }));
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, ThreadCountReported) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.thread_count(), 3u);
}

TEST(ThreadPoolTest, RejectsZeroThreads) {
  EXPECT_THROW(ThreadPool pool(0), InvalidArgument);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL(); });
}

TEST(ThreadPoolTest, ParallelForFewerItemsThanThreads) {
  ThreadPool pool(8);
  std::atomic<int> counter{0};
  pool.parallel_for(3, [&](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 3);
}

TEST(ThreadPoolTest, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [](std::size_t i) {
                                   if (i == 5) throw std::runtime_error("x");
                                 }),
               std::runtime_error);
}

TEST(ThreadPoolTest, DestructorDrainsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) pool.submit([&counter] { ++counter; });
    // Futures discarded; destructor must still run all accepted tasks.
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, DefaultThreadCountPositive) {
  EXPECT_GE(ThreadPool::default_thread_count(), 1u);
}

}  // namespace
}  // namespace essns::parallel
