#include "common/table.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace essns {
namespace {

TEST(TextTableTest, RendersTitleHeaderAndRows) {
  TextTable t("Demo");
  t.set_header({"a", "bb"});
  t.add_row({"1", "2"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("== Demo =="), std::string::npos);
  EXPECT_NE(out.find("| a | bb |"), std::string::npos);
  EXPECT_NE(out.find("| 1 | 2  |"), std::string::npos);
}

TEST(TextTableTest, PadsColumnsToWidestCell) {
  TextTable t("");
  t.set_header({"x"});
  t.add_row({"wide-cell"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("| x         |"), std::string::npos);
}

TEST(TextTableTest, RejectsMismatchedRowWidth) {
  TextTable t("t");
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InvalidArgument);
}

TEST(TextTableTest, NumFormatsFixedPrecision) {
  EXPECT_EQ(TextTable::num(1.23456, 2), "1.23");
  EXPECT_EQ(TextTable::num(2.0, 3), "2.000");
  EXPECT_EQ(TextTable::integer(42), "42");
}

TEST(TextTableTest, RowCount) {
  TextTable t("t");
  t.set_header({"a"});
  EXPECT_EQ(t.row_count(), 0u);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TextTableTest, EmptyTableStillRenders) {
  TextTable t("empty");
  const std::string out = t.to_string();
  EXPECT_NE(out.find("== empty =="), std::string::npos);
}

}  // namespace
}  // namespace essns
