// EXP-T1 — regenerates Table I of the paper: the nine fireLib input
// parameters with their ranges and units, plus an end-to-end check that the
// genome encoding respects every range (sampled round-trips).
#include <cstdio>

#include "common/table.hpp"
#include "firelib/scenario.hpp"

int main() {
  using namespace essns;
  const auto& space = firelib::ScenarioSpace::table1();

  TextTable table("Table I — Parameters used by the fireLib library");
  table.set_header({"Parameter", "Description", "Range", "Unit"});
  for (int i = 0; i < firelib::kParamCount; ++i) {
    const auto& spec = space.spec(i);
    char range[64];
    if (spec.integral) {
      std::snprintf(range, sizeof range, "%d-%d", static_cast<int>(spec.lo),
                    static_cast<int>(spec.hi));
    } else {
      std::snprintf(range, sizeof range, "%g-%g", spec.lo, spec.hi);
    }
    table.add_row({spec.name, spec.description, range, spec.unit});
  }
  table.print();

  // Round-trip audit: 10k random scenarios encode into [0,1]^9 and decode
  // back inside their Table I ranges.
  Rng rng(1);
  int violations = 0;
  for (int i = 0; i < 10000; ++i) {
    const auto s = space.sample(rng);
    const auto back = space.decode(space.encode(s));
    if (!space.is_valid(back)) ++violations;
  }
  std::printf("\nencode/decode range audit: %d violations in 10000 samples\n",
              violations);
  return violations == 0 ? 0 : 1;
}
