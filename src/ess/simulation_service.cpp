#include "ess/simulation_service.hpp"

#include <algorithm>
#include <bit>

#include "common/error.hpp"
#include "ess/fitness.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace essns::ess {

SimulationService::SimulationService(const firelib::FireEnvironment& env,
                                     unsigned workers)
    : env_(&env), propagator_(spread_model_) {
  ESSNS_REQUIRE(workers >= 1, "need at least one worker");
  workspaces_.resize(workers > 1 ? workers + 1 : 1);
  worker_placed_.assign(workspaces_.size(), 0);
  if (workers > 1) {
    pool_ = std::make_unique<
        parallel::MasterWorker<const SimulationRequest*, SimulationResult>>(
        workers, [this](unsigned id, const SimulationRequest* const& req) {
          return run_one(id + 1, *req);
        });
  }
}

SimulationService::~SimulationService() = default;

unsigned SimulationService::workers() const {
  return pool_ ? pool_->worker_count() : 1;
}

void SimulationService::clear_step_cache() {
  step_cache_.clear();
  cache_context_ = CacheContext{};
  step_cache_bytes_ = 0;
}

void SimulationService::set_cache_policy(cache::CachePolicy policy) {
  if (policy == cache_policy_) return;
  cache_policy_ = policy;
  clear_step_cache();
}

void SimulationService::set_cache_enabled(bool enabled) {
  set_cache_policy(enabled ? cache::CachePolicy::kStep
                           : cache::CachePolicy::kOff);
}

void SimulationService::set_shared_cache(
    std::shared_ptr<cache::SharedScenarioCache> cache) {
  shared_cache_ = std::move(cache);
}

std::size_t SimulationService::cache_entries() const {
  switch (cache_policy_) {
    case cache::CachePolicy::kStep: return step_cache_.size();
    case cache::CachePolicy::kShared:
      return shared_cache_ ? shared_cache_->stats().entries : 0;
    case cache::CachePolicy::kOff: break;
  }
  return 0;
}

std::size_t SimulationService::cache_bytes() const {
  switch (cache_policy_) {
    case cache::CachePolicy::kStep: return step_cache_bytes_;
    case cache::CachePolicy::kShared:
      return shared_cache_ ? shared_cache_->stats().bytes : 0;
    case cache::CachePolicy::kOff: break;
  }
  return 0;
}

void SimulationService::set_reference_kernels(bool reference) {
  propagator_.set_reference_sweep(reference);
  reference_fitness_ = reference;
}

void SimulationService::set_sweep_queue(firelib::SweepQueue queue) {
  propagator_.set_sweep_queue(queue);
}

firelib::SweepQueue SimulationService::sweep_queue() const {
  return propagator_.sweep_queue();
}

void SimulationService::set_simd_mode(simd::Mode mode) {
  propagator_.set_simd_mode(mode);
}

simd::Mode SimulationService::simd_mode() const {
  return propagator_.simd_mode();
}

simd::Isa SimulationService::simd_isa() const {
  return propagator_.simd_isa();
}

void SimulationService::set_numa_mode(parallel::NumaMode mode) {
  numa_mode_ = mode;
  std::fill(worker_placed_.begin(), worker_placed_.end(), 0);
}

bool SimulationService::numa_active() const {
  return parallel::numa_pinning_active(numa_mode_,
                                       parallel::system_numa_topology());
}

std::size_t SimulationService::numa_nodes() const {
  return parallel::system_numa_topology().node_count();
}

void SimulationService::place_worker(unsigned worker_id) {
  if (worker_placed_[worker_id]) return;
  worker_placed_[worker_id] = 1;
  // First touch by this worker on its own thread: label its trace lane
  // (worker 0 is the master thread, named by the session owner).
  if (worker_id > 0)
    obs::set_thread_name("sim-worker-" + std::to_string(worker_id));
  const parallel::NumaTopology& topology = parallel::system_numa_topology();
  if (!parallel::numa_pinning_active(numa_mode_, topology)) return;
  if (worker_id > 0) {
    const std::size_t node =
        parallel::node_for_worker(topology, worker_id - 1);
    if (parallel::pin_current_thread_to_cpus(topology.nodes[node].cpus))
      workers_pinned_.fetch_add(1, std::memory_order_relaxed);
  }
  // First-touch every slab from the (now pinned) owning thread, so the
  // pages are committed on this worker's node before the first sweep.
  workspaces_[worker_id].prefault(env_->rows(), env_->cols());
}

firelib::IgnitionMap SimulationService::simulate(
    const firelib::Scenario& scenario, const firelib::IgnitionMap& start,
    double end_time) {
  place_worker(0);
  simulations_.fetch_add(1, std::memory_order_relaxed);
  ESSNS_TRACE_SPAN("simulate");
  return propagator_.propagate(*env_, scenario, start, end_time,
                               workspaces_[0]);
}

SimulationResult SimulationService::run_one(unsigned worker_id,
                                            const SimulationRequest& req) {
  ESSNS_REQUIRE(req.scenario && req.start, "request scenario/start must be set");
  place_worker(worker_id);
  simulations_.fetch_add(1, std::memory_order_relaxed);
  obs::SpanTimer sim_timer("simulate");
  firelib::PropagationWorkspace& workspace = workspaces_[worker_id];
  const firelib::IgnitionMap& simulated = propagator_.propagate(
      *env_, *req.scenario, *req.start, req.end_time, workspace);
  SimulationResult result;
  if (req.target) {
    result.fitness =
        reference_fitness_
            ? jaccard_at_reference(*req.target, simulated, req.end_time,
                                   req.start_time)
            : jaccard_at(*req.target, simulated, req.end_time, req.start_time);
  }
  if (req.keep_map) result.map = simulated;
  result.sim_seconds = sim_timer.stop();
  if (obs::metrics_enabled()) {
    obs::add_counter("sim.count", 1);
    obs::record_histogram("sim.seconds", result.sim_seconds);
  }
  return result;
}

std::vector<SimulationResult> SimulationService::run_batch_uncached(
    const std::vector<const SimulationRequest*>& requests) {
  if (obs::metrics_enabled() && !requests.empty())
    obs::record_histogram("sweep.batch_size",
                          static_cast<double>(requests.size()));
  if (backend_ == firelib::SweepBackend::kBatched && !requests.empty() &&
      !propagator_.reference_sweep()) {
    // The batch engine needs one (start map, horizon) per launch — exactly
    // what the cache paths and the fitness/map batch builders produce.
    // Targets and start times may differ per request (scoring is
    // per-request, after the launch).
    const SimulationRequest& first = *requests.front();
    bool launchable = true;
    for (const SimulationRequest* req : requests)
      if (req->start != first.start || req->end_time != first.end_time)
        launchable = false;
    if (launchable) return run_batch_batched(requests);
  }
  if (pool_) return pool_->evaluate(requests);
  std::vector<SimulationResult> results;
  results.reserve(requests.size());
  for (const SimulationRequest* req : requests)
    results.push_back(run_one(0, *req));
  return results;
}

std::vector<SimulationResult> SimulationService::run_batch_batched(
    const std::vector<const SimulationRequest*>& requests) {
  // One launch on the calling thread — the GPU-shaped execution model the
  // backend enum is the on-ramp for (a device backend submits here too).
  place_worker(0);
  if (!batch_engine_)
    batch_engine_ = std::make_unique<firelib::BatchSweep>(spread_model_);
  batch_engine_->set_simd_mode(propagator_.simd_mode());

  obs::SpanTimer batch_timer("sim.batch");
  std::vector<const firelib::Scenario*> scenarios;
  scenarios.reserve(requests.size());
  for (const SimulationRequest* req : requests)
    scenarios.push_back(req->scenario);
  const SimulationRequest& first = *requests.front();
  std::vector<firelib::IgnitionMap> maps =
      batch_engine_->sweep(*env_, scenarios, *first.start, first.end_time);
  const double batch_seconds = batch_timer.stop();
  // Cost attribution for the shared cache's eviction weighting: the launch
  // is one unit of work, split evenly (a perf heuristic, not a result).
  const double per_sim_seconds =
      batch_seconds / static_cast<double>(requests.size());
  simulations_.fetch_add(requests.size(), std::memory_order_relaxed);

  std::vector<SimulationResult> results(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const SimulationRequest& req = *requests[i];
    if (req.target) {
      results[i].fitness =
          reference_fitness_
              ? jaccard_at_reference(*req.target, maps[i], req.end_time,
                                     req.start_time)
              : jaccard_at(*req.target, maps[i], req.end_time, req.start_time);
    }
    if (req.keep_map) results[i].map = std::move(maps[i]);
    results[i].sim_seconds = per_sim_seconds;
  }
  if (obs::metrics_enabled()) {
    obs::add_counter("sim.count", requests.size());
    for (std::size_t i = 0; i < requests.size(); ++i)
      obs::record_histogram("sim.seconds", per_sim_seconds);
  }
  return results;
}

std::vector<SimulationResult> SimulationService::run_batch(
    const std::vector<SimulationRequest>& requests) {
  if (requests.empty()) return {};
  ESSNS_TRACE_SPAN("sim.batch");

  // The cache applies to homogeneous batches — one (start, target, interval)
  // shared by every request, which is what fitness_batch / simulate_batch
  // produce. Mixed batches bypass it.
  bool homogeneous = cache_policy_ != cache::CachePolicy::kOff;
  const SimulationRequest& first = requests.front();
  for (const SimulationRequest& req : requests) {
    ESSNS_REQUIRE(req.scenario && req.start,
                  "request scenario/start must be set");
    if (req.start != first.start || req.target != first.target ||
        req.start_time != first.start_time || req.end_time != first.end_time)
      homogeneous = false;
  }
  if (homogeneous) {
    return cache_policy_ == cache::CachePolicy::kShared
               ? run_batch_shared(requests)
               : run_batch_step(requests);
  }

  std::vector<const SimulationRequest*> tasks;
  tasks.reserve(requests.size());
  for (const SimulationRequest& req : requests) tasks.push_back(&req);
  return run_batch_uncached(tasks);
}

std::vector<SimulationResult> SimulationService::run_batch_step(
    const std::vector<SimulationRequest>& requests) {
  // The step cache has no shard underneath to feed the registry (unlike
  // kShared, whose cache.* counts come from ScenarioCacheShard), so flush
  // the master-thread bookkeeping deltas once per batch instead.
  const std::size_t hits_before = cache_hits_;
  const std::size_t misses_before = cache_misses_;
  const std::size_t rejected_before = cache_insertions_rejected_;
  const std::size_t dedup_before = batch_dedup_hits_;
  const SimulationRequest& first = requests.front();
  CacheContext context;
  context.start = first.start;
  context.target = first.target;
  context.start_time = first.start_time;
  context.end_time = first.end_time;
  context.start_fingerprint = cache::map_fingerprint(*first.start);
  context.target_fingerprint =
      first.target ? cache::map_fingerprint(*first.target) : 0;
  context.valid = true;
  if (!(context == cache_context_)) {
    step_cache_.clear();
    step_cache_bytes_ = 0;
    cache_context_ = context;
  }

  // Plan the batch on the master thread: serve what the cache can, collapse
  // in-batch duplicates onto one scheduled simulation, simulate the rest.
  constexpr std::size_t kFromCache = static_cast<std::size_t>(-1);
  std::vector<SimulationResult> results(requests.size());
  std::vector<std::size_t> slot_of(requests.size(), kFromCache);
  std::vector<SimulationRequest> scheduled;
  std::vector<cache::ScenarioKey> scheduled_keys;
  std::unordered_map<cache::ScenarioKey, std::size_t, cache::ScenarioKeyHash>
      in_batch;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const SimulationRequest& req = requests[i];
    const cache::ScenarioKey key = cache::make_scenario_key(*req.scenario);
    const auto cached = step_cache_.find(key);
    // Step mode keeps the original behavior bit-for-bit: only an explicit
    // fitness record satisfies a fitness request (no re-scoring from maps).
    const bool satisfied = cached != step_cache_.end() &&
                           (!req.target || cached->second.find_fitness(0, 0)) &&
                           (!req.keep_map || cached->second.map);
    if (satisfied) {
      if (req.target) results[i].fitness = *cached->second.find_fitness(0, 0);
      if (req.keep_map) results[i].map = *cached->second.map;
      ++cache_hits_;
      continue;
    }
    const auto [it, inserted] = in_batch.try_emplace(key, scheduled.size());
    if (inserted) {
      scheduled.push_back(req);
      scheduled_keys.push_back(key);
      ++cache_misses_;
    } else {
      // A duplicate widens the scheduled request rather than re-simulating.
      scheduled[it->second].keep_map |= req.keep_map;
      ++cache_hits_;
      ++batch_dedup_hits_;
    }
    slot_of[i] = it->second;
  }

  std::vector<const SimulationRequest*> tasks;
  tasks.reserve(scheduled.size());
  for (const SimulationRequest& req : scheduled) tasks.push_back(&req);
  std::vector<SimulationResult> simulated = run_batch_uncached(tasks);

  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (slot_of[i] == kFromCache) continue;
    const SimulationRequest& req = requests[i];
    const SimulationResult& sim = simulated[slot_of[i]];
    if (req.target) results[i].fitness = sim.fitness;
    if (req.keep_map) results[i].map = sim.map;
  }
  for (std::size_t slot = 0; slot < scheduled.size(); ++slot) {
    const cache::ScenarioKey& key = scheduled_keys[slot];
    const bool known = step_cache_.count(key) != 0;
    if (!known && step_cache_.size() >= step_cache_capacity_) {
      ++cache_insertions_rejected_;
      continue;
    }
    cache::CachedScenario& entry = step_cache_[key];
    const std::size_t charge_before = known ? cache::entry_charge(entry) : 0;
    if (scheduled[slot].target)
      entry.set_fitness(0, 0, simulated[slot].fitness);
    if (scheduled[slot].keep_map && !entry.map)
      entry.map = std::move(simulated[slot].map);
    step_cache_bytes_ += cache::entry_charge(entry) - charge_before;
  }
  if (obs::metrics_enabled()) {
    obs::add_counter("cache.hits", cache_hits_ - hits_before);
    obs::add_counter("cache.misses", cache_misses_ - misses_before);
    obs::add_counter("cache.insertions_rejected",
                     cache_insertions_rejected_ - rejected_before);
    obs::add_counter("sweep.batch_dedup_hits",
                     batch_dedup_hits_ - dedup_before);
  }
  return results;
}

std::vector<SimulationResult> SimulationService::run_batch_shared(
    const std::vector<SimulationRequest>& requests) {
  if (!shared_cache_)
    shared_cache_ = std::make_shared<cache::SharedScenarioCache>(
        cache_mem_bytes_);

  // Keys carry the *simulation* context (start map, end time) only; the
  // scoring target lives in per-entry fitness records. So unlike kStep a
  // context change invalidates nothing, and the SS/PS map passes hit the
  // entries the OS fitness pass just filled for the same interval.
  if (!env_fingerprint_)
    env_fingerprint_ = cache::environment_fingerprint(*env_);
  const SimulationRequest& first = requests.front();
  const std::uint64_t start_fp = cache::map_fingerprint(*first.start);
  const std::uint64_t context =
      cache::context_fingerprint(*env_fingerprint_, start_fp, first.end_time);
  cache::FitnessQuery query;
  if (first.target) {
    query.target_fingerprint = cache::map_fingerprint(*first.target);
    query.start_time_bits = std::bit_cast<std::uint64_t>(first.start_time);
  }

  constexpr std::size_t kFromCache = static_cast<std::size_t>(-1);
  std::vector<SimulationResult> results(requests.size());
  std::vector<std::size_t> slot_of(requests.size(), kFromCache);
  std::vector<SimulationRequest> scheduled;
  std::vector<cache::ScenarioKey> scheduled_keys;
  std::unordered_map<cache::ScenarioKey, std::size_t, cache::ScenarioKeyHash>
      in_batch;
  const std::size_t dedup_before = batch_dedup_hits_;
  // Mirrors run_batch_step's scheduling skeleton on purpose: the step path
  // is frozen bit-for-bit, so the two evolve independently.
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const SimulationRequest& req = requests[i];
    cache::ScenarioKey key = cache::make_scenario_key(*req.scenario);
    key.context = context;
    // In-batch duplicates first: the scheduled simulation will serve them,
    // so probing the shared cache would only take the shard mutex to record
    // a phantom miss (skewing the cache-global hit-rate on exactly the
    // duplicate-heavy batches the cache targets).
    if (const auto dup = in_batch.find(key); dup != in_batch.end()) {
      ++cache_hits_;
      ++batch_dedup_hits_;
      slot_of[i] = dup->second;
      continue;
    }
    const auto cached =
        shared_cache_->find(key, req.keep_map, req.target ? &query : nullptr);
    if (cached) {
      if (req.target) {
        const double* fitness = cached->find_fitness(
            query.target_fingerprint, query.start_time_bits);
        if (fitness) {
          results[i].fitness = *fitness;
        } else {
          // New target for a cached map: re-score the byte-exact map (a
          // single pass, orders of magnitude cheaper than re-simulating)
          // and record the score for the next asker.
          results[i].fitness =
              reference_fitness_
                  ? jaccard_at_reference(*req.target, *cached->map,
                                         req.end_time, req.start_time)
                  : jaccard_at(*req.target, *cached->map, req.end_time,
                               req.start_time);
          cache::CachedScenario scored;
          scored.set_fitness(query.target_fingerprint, query.start_time_bits,
                             results[i].fitness);
          const cache::InsertOutcome outcome =
              shared_cache_->insert(key, std::move(scored), 0.0);
          cache_evictions_ += outcome.evictions;
          if (outcome.rejected) ++cache_insertions_rejected_;
        }
      }
      if (req.keep_map) results[i].map = *cached->map;
      ++cache_hits_;
      continue;
    }
    in_batch.emplace(key, scheduled.size());
    slot_of[i] = scheduled.size();
    scheduled.push_back(req);
    // Always keep the map on a shared-mode miss: a fitness-only request
    // costs one extra map copy now, but the map is exactly what the same
    // step's SS/PS pass (or a later target) would otherwise re-simulate.
    // The byte budget absorbs the footprint.
    scheduled.back().keep_map = true;
    scheduled_keys.push_back(key);
    ++cache_misses_;
  }

  std::vector<const SimulationRequest*> tasks;
  tasks.reserve(scheduled.size());
  for (const SimulationRequest& req : scheduled) tasks.push_back(&req);
  std::vector<SimulationResult> simulated = run_batch_uncached(tasks);

  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (slot_of[i] == kFromCache) continue;
    const SimulationRequest& req = requests[i];
    const SimulationResult& sim = simulated[slot_of[i]];
    if (req.target) results[i].fitness = sim.fitness;
    if (req.keep_map) results[i].map = sim.map;
  }
  for (std::size_t slot = 0; slot < scheduled.size(); ++slot) {
    cache::CachedScenario value;
    if (scheduled[slot].target)
      value.set_fitness(query.target_fingerprint, query.start_time_bits,
                        simulated[slot].fitness);
    value.map = std::move(simulated[slot].map);
    const cache::InsertOutcome outcome = shared_cache_->insert(
        scheduled_keys[slot], std::move(value), simulated[slot].sim_seconds);
    cache_evictions_ += outcome.evictions;
    if (outcome.rejected) ++cache_insertions_rejected_;
  }
  // The shared cache's own shards feed the cache.* registry counts; the
  // in-batch dedup happens before the cache is touched, so flush it here
  // (once per batch, master thread).
  if (obs::metrics_enabled())
    obs::add_counter("sweep.batch_dedup_hits",
                     batch_dedup_hits_ - dedup_before);
  return results;
}

std::vector<firelib::IgnitionMap> SimulationService::simulate_batch(
    const std::vector<firelib::Scenario>& scenarios,
    const firelib::IgnitionMap& start, double end_time) {
  std::vector<SimulationRequest> requests(scenarios.size());
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    requests[i].scenario = &scenarios[i];
    requests[i].start = &start;
    requests[i].end_time = end_time;
  }
  std::vector<SimulationResult> results = run_batch(requests);
  std::vector<firelib::IgnitionMap> maps;
  maps.reserve(results.size());
  for (SimulationResult& result : results) maps.push_back(std::move(result.map));
  return maps;
}

std::vector<double> SimulationService::fitness_batch(
    const std::vector<firelib::Scenario>& scenarios,
    const firelib::IgnitionMap& start, const firelib::IgnitionMap& target,
    double start_time, double end_time) {
  std::vector<SimulationRequest> requests(scenarios.size());
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    requests[i].scenario = &scenarios[i];
    requests[i].start = &start;
    requests[i].start_time = start_time;
    requests[i].end_time = end_time;
    requests[i].target = &target;
    requests[i].keep_map = false;
  }
  std::vector<SimulationResult> results = run_batch(requests);
  std::vector<double> fitness;
  fitness.reserve(results.size());
  for (const SimulationResult& result : results)
    fitness.push_back(result.fitness);
  return fitness;
}

}  // namespace essns::ess
