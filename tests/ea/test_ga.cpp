#include "ea/ga.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "ea/landscapes.hpp"

namespace essns::ea {
namespace {

TEST(GaTest, SolvesSphere) {
  Rng rng(1);
  GaConfig cfg;
  cfg.population_size = 30;
  cfg.offspring_count = 30;
  const GaResult r = run_ga(cfg, 5, landscapes::batch(landscapes::sphere),
                            {60, 0.99}, rng);
  EXPECT_GE(r.best.fitness, 0.95);
}

TEST(GaTest, FitnessThresholdStopsEarly) {
  Rng rng(2);
  GaConfig cfg;
  const GaResult r =
      run_ga(cfg, 3, landscapes::batch(landscapes::sphere), {500, 0.5}, rng);
  EXPECT_LT(r.generations, 500);
  EXPECT_GE(r.best.fitness, 0.5);
}

TEST(GaTest, GenerationBudgetRespected) {
  Rng rng(3);
  GaConfig cfg;
  const GaResult r =
      run_ga(cfg, 3, landscapes::batch(landscapes::sphere), {7, 2.0}, rng);
  EXPECT_EQ(r.generations, 7);
}

TEST(GaTest, EvaluationCountMatchesBudget) {
  Rng rng(4);
  GaConfig cfg;
  cfg.population_size = 10;
  cfg.offspring_count = 20;
  std::size_t calls = 0;
  const GaResult r = run_ga(
      cfg, 3, landscapes::counting_batch(landscapes::sphere, &calls), {5, 2.0},
      rng);
  // Initial pop + offspring per generation.
  EXPECT_EQ(r.evaluations, 10u + 5u * 20u);
  EXPECT_EQ(calls, r.evaluations);
}

TEST(GaTest, DeterministicForSameSeed) {
  GaConfig cfg;
  Rng a(9), b(9);
  const GaResult ra =
      run_ga(cfg, 4, landscapes::batch(landscapes::rastrigin), {20, 2.0}, a);
  const GaResult rb =
      run_ga(cfg, 4, landscapes::batch(landscapes::rastrigin), {20, 2.0}, b);
  EXPECT_EQ(ra.best.genome, rb.best.genome);
  EXPECT_DOUBLE_EQ(ra.best.fitness, rb.best.fitness);
}

TEST(GaTest, BestNeverDecreasesAcrossGenerations) {
  Rng rng(5);
  GaConfig cfg;
  std::vector<double> bests;
  run_ga(cfg, 4, landscapes::batch(landscapes::rastrigin), {25, 2.0}, rng,
         [&](int, const Population& pop) { bests.push_back(max_fitness(pop)); });
  // Elitism: generation best is monotonically non-decreasing.
  for (std::size_t i = 1; i < bests.size(); ++i)
    EXPECT_GE(bests[i], bests[i - 1] - 1e-12);
}

TEST(GaTest, FinalPopulationSizeStable) {
  Rng rng(6);
  GaConfig cfg;
  cfg.population_size = 17;
  cfg.offspring_count = 9;
  const GaResult r =
      run_ga(cfg, 3, landscapes::batch(landscapes::sphere), {10, 2.0}, rng);
  EXPECT_EQ(r.population.size(), 17u);
  for (const auto& ind : r.population) EXPECT_TRUE(ind.evaluated());
}

TEST(GaTest, ObserverSeesInitialPopulationAndEveryGeneration) {
  Rng rng(7);
  GaConfig cfg;
  int calls = 0;
  run_ga(cfg, 3, landscapes::batch(landscapes::sphere), {6, 2.0}, rng,
         [&](int gen, const Population&) { EXPECT_EQ(gen, calls++); });
  EXPECT_EQ(calls, 7);  // generations 0..6
}

TEST(GaTest, SeededInitialPopulationIsUsed) {
  Rng rng(8);
  GaConfig cfg;
  cfg.population_size = 8;
  cfg.offspring_count = 8;
  cfg.mutation_rate = 0.0;
  cfg.crossover_rate = 0.0;
  // All-identical seeded population: with no variation operators the result
  // population must still be that genome everywhere.
  Population seed(8);
  for (auto& ind : seed) ind.genome = Genome{0.25, 0.75};
  const GaResult r = run_ga(cfg, 2, landscapes::batch(landscapes::sphere),
                            {3, 2.0}, rng, nullptr, &seed);
  for (const auto& ind : r.population)
    EXPECT_EQ(ind.genome, (Genome{0.25, 0.75}));
}

TEST(GaTest, RejectsBadConfig) {
  Rng rng(1);
  GaConfig tiny;
  tiny.population_size = 1;
  EXPECT_THROW(
      run_ga(tiny, 2, landscapes::batch(landscapes::sphere), {1, 1.0}, rng),
      InvalidArgument);
  GaConfig elite;
  elite.population_size = 4;
  elite.elite_count = 4;
  EXPECT_THROW(
      run_ga(elite, 2, landscapes::batch(landscapes::sphere), {1, 1.0}, rng),
      InvalidArgument);
  GaConfig ok;
  Population wrong_size(3);
  EXPECT_THROW(run_ga(ok, 2, landscapes::batch(landscapes::sphere), {1, 1.0},
                      rng, nullptr, &wrong_size),
               InvalidArgument);
}

TEST(GaTest, ConvergesGenotypically) {
  // The premature-convergence property the paper criticizes: after enough
  // generations a fitness-driven GA population clusters around one point.
  Rng rng(10);
  GaConfig cfg;
  cfg.population_size = 24;
  cfg.offspring_count = 24;
  cfg.mutation_sigma = 0.02;
  const GaResult r =
      run_ga(cfg, 2, landscapes::batch(landscapes::sphere), {80, 2.0}, rng);
  double spread = 0.0;
  for (const auto& ind : r.population)
    spread += genome_distance(ind.genome, r.best.genome);
  spread /= static_cast<double>(r.population.size());
  EXPECT_LT(spread, 0.2);
}

}  // namespace
}  // namespace essns::ea
