#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "json_checker.hpp"

namespace essns::obs {
namespace {

class RegistryGuard {
 public:
  RegistryGuard() : previous_(metrics_registry()) {}
  ~RegistryGuard() { install_metrics_registry(previous_); }

 private:
  MetricsRegistry* previous_;
};

TEST(CounterTest, SingleThreadExactValue) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.add();
  counter.add(41);
  EXPECT_EQ(counter.value(), 42u);
}

TEST(CounterTest, ExactUnderFourThreadHammer) {
  Counter counter;
  constexpr std::uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([&] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.add();
    });
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), 4 * kPerThread);
}

TEST(HistogramTest, BucketLowerBoundsAreStrictlyIncreasing) {
  for (std::size_t b = 1; b < Histogram::kBucketCount; ++b)
    EXPECT_LT(Histogram::bucket_lower_bound(b - 1),
              Histogram::bucket_lower_bound(b))
        << "bucket " << b;
}

TEST(HistogramTest, LowerBoundsRoundTripThroughBucketOf) {
  // Every bucket's lower bound is an exactly-representable double, so
  // recording it must land exactly in that bucket — the property that makes
  // pinned-input quantiles exact.
  for (std::size_t b = 1; b < Histogram::kBucketCount; ++b)
    EXPECT_EQ(Histogram::bucket_of(Histogram::bucket_lower_bound(b)), b)
        << "bucket " << b;
}

TEST(HistogramTest, ValuesJustBelowABoundaryLandOneBucketLower) {
  const double below_two = std::nextafter(2.0, 0.0);
  EXPECT_EQ(Histogram::bucket_of(below_two),
            Histogram::bucket_of(2.0) - 1);
  const double below_1_75 = std::nextafter(1.75, 0.0);
  EXPECT_EQ(Histogram::bucket_of(below_1_75),
            Histogram::bucket_of(1.75) - 1);
}

TEST(HistogramTest, NonPositiveAndNanGoToUnderflowBucket) {
  EXPECT_EQ(Histogram::bucket_of(0.0), 0u);
  EXPECT_EQ(Histogram::bucket_of(-1.0), 0u);
  EXPECT_EQ(Histogram::bucket_of(std::nan("")), 0u);
  EXPECT_EQ(Histogram::bucket_of(std::ldexp(1.0, Histogram::kMinExp) / 2), 0u);
}

TEST(HistogramTest, HugeValuesClampIntoTopBucket) {
  EXPECT_EQ(Histogram::bucket_of(std::ldexp(1.0, Histogram::kMaxExp + 3)),
            Histogram::kBucketCount - 1);
  EXPECT_EQ(Histogram::bucket_of(std::numeric_limits<double>::infinity()),
            Histogram::kBucketCount - 1);
}

TEST(HistogramTest, EmptyHistogramReportsZeros) {
  Histogram histogram;
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_EQ(histogram.sum(), 0.0);
  EXPECT_EQ(histogram.min(), 0.0);
  EXPECT_EQ(histogram.max(), 0.0);
  EXPECT_EQ(histogram.quantile(0.5), 0.0);
}

TEST(HistogramTest, ExactQuantilesOnPinnedInputs) {
  // 98 samples of 1.0 and 2 of 1024.0 — both exact bucket lower bounds.
  Histogram histogram;
  for (int i = 0; i < 98; ++i) histogram.record(1.0);
  histogram.record(1024.0);
  histogram.record(1024.0);

  EXPECT_EQ(histogram.count(), 100u);
  EXPECT_EQ(histogram.sum(), 98.0 + 2 * 1024.0);
  EXPECT_EQ(histogram.min(), 1.0);
  EXPECT_EQ(histogram.max(), 1024.0);
  EXPECT_EQ(histogram.quantile(0.50), 1.0);   // rank 50
  EXPECT_EQ(histogram.quantile(0.90), 1.0);   // rank 90
  EXPECT_EQ(histogram.quantile(0.98), 1.0);   // rank 98, last 1.0
  EXPECT_EQ(histogram.quantile(0.99), 1024.0);  // rank 99, first 1024.0
  EXPECT_EQ(histogram.quantile(1.0), 1024.0);
  EXPECT_EQ(histogram.quantile(0.0), 1.0);    // rank clamps to 1
}

TEST(HistogramTest, ZeroRecordingsCountTowardQuantileRanks) {
  Histogram histogram;
  histogram.record(0.0);
  histogram.record(4.0);
  EXPECT_EQ(histogram.count(), 2u);
  EXPECT_EQ(histogram.quantile(0.5), 0.0);  // underflow bucket lower bound
  EXPECT_EQ(histogram.quantile(1.0), 4.0);
  EXPECT_EQ(histogram.min(), 0.0);
}

TEST(HistogramTest, ShardAggregationExactUnderFourThreadHammer) {
  // Each thread records powers of two (exact bucket lower bounds), so
  // per-bucket totals, count and sum must all aggregate exactly across the
  // per-thread stripes.
  Histogram histogram;
  constexpr int kPerValue = 5000;
  const std::vector<double> values = {0.25, 1.0, 16.0, 1024.0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([&, t] {
      const double mine = values[static_cast<std::size_t>(t)];
      for (int i = 0; i < kPerValue; ++i) {
        histogram.record(mine);
        histogram.record(1.0);  // every thread also hits a shared bucket
      }
    });
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(histogram.count(), 4u * 2u * kPerValue);
  for (const double value : values) {
    const std::uint64_t expected =
        value == 1.0 ? 5u * kPerValue : kPerValue;
    EXPECT_EQ(histogram.bucket_total(Histogram::bucket_of(value)), expected)
        << "value " << value;
  }
  const double expected_sum =
      kPerValue * (0.25 + 1.0 + 16.0 + 1024.0) + 4.0 * kPerValue * 1.0;
  EXPECT_EQ(histogram.sum(), expected_sum);  // power-of-two sums are exact
  EXPECT_EQ(histogram.min(), 0.25);
  EXPECT_EQ(histogram.max(), 1024.0);
}

TEST(MetricsRegistryTest, SameNameReturnsSameMetric) {
  MetricsRegistry registry;
  EXPECT_TRUE(registry.empty());
  Counter& a = registry.counter("x");
  Counter& b = registry.counter("x");
  EXPECT_EQ(&a, &b);
  Histogram& h1 = registry.histogram("y");
  Histogram& h2 = registry.histogram("y");
  EXPECT_EQ(&h1, &h2);
  EXPECT_FALSE(registry.empty());
  // A counter and a histogram may share a name without colliding.
  registry.histogram("x").record(1.0);
  EXPECT_EQ(registry.counter("x").value(), 0u);
}

TEST(MetricsRegistryTest, JsonRoundTripsThroughAParser) {
  MetricsRegistry registry;
  registry.counter("jobs").add(7);
  Histogram& h = registry.histogram("latency");
  for (int i = 0; i < 99; ++i) h.record(1.0);
  h.record(4.0);

  const testjson::Value root = testjson::parse(registry.json());
  EXPECT_EQ(root.member("counters").member("jobs").number_value(), 7.0);
  const testjson::Value& latency = root.member("histograms").member("latency");
  EXPECT_EQ(latency.member("count").number_value(), 100.0);
  EXPECT_EQ(latency.member("min").number_value(), 1.0);
  EXPECT_EQ(latency.member("max").number_value(), 4.0);
  EXPECT_EQ(latency.member("p50").number_value(), 1.0);
  EXPECT_EQ(latency.member("p99").number_value(), 1.0);
  // Two non-empty buckets, reported as [lower_bound, count] pairs.
  const auto& buckets = latency.member("buckets").elements();
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_EQ(buckets[0].elements()[0].number_value(), 1.0);
  EXPECT_EQ(buckets[0].elements()[1].number_value(), 99.0);
  EXPECT_EQ(buckets[1].elements()[0].number_value(), 4.0);
  EXPECT_EQ(buckets[1].elements()[1].number_value(), 1.0);
}

TEST(MetricsRegistryTest, EmptyRegistryJsonParses) {
  MetricsRegistry registry;
  const testjson::Value root = testjson::parse(registry.json());
  EXPECT_TRUE(root.has_member("counters"));
  EXPECT_TRUE(root.has_member("histograms"));
}

TEST(MetricsRegistryTest, SummaryTableHasOneRowPerMetric) {
  MetricsRegistry registry;
  registry.counter("a").add(1);
  registry.counter("b").add(2);
  registry.histogram("c").record(1.0);
  EXPECT_EQ(registry.summary_table().row_count(), 3u);
}

TEST(MetricsRegistryTest, WriteJsonThrowsIoErrorOnBadPath) {
  MetricsRegistry registry;
  EXPECT_THROW(registry.write_json("/nonexistent-dir/metrics.json"), IoError);
}

TEST(MetricsRegistryTest, WriteJsonProducesReadableFile) {
  MetricsRegistry registry;
  registry.counter("written").add(5);
  const std::string path = ::testing::TempDir() + "obs_metrics_out.json";
  registry.write_json(path);
  std::ifstream in(path);
  std::stringstream text;
  text << in.rdbuf();
  const testjson::Value root = testjson::parse(text.str());
  EXPECT_EQ(root.member("counters").member("written").number_value(), 5.0);
  std::remove(path.c_str());
}

TEST(MetricsSnapshotTest, SnapshotJsonMatchesRegistryJson) {
  // The merged-rollup contract: a snapshot's json() must be byte-identical
  // to the live registry's, so a cross-process merge is indistinguishable
  // from a single-process scrape.
  MetricsRegistry registry;
  registry.counter("jobs").add(7);
  Histogram& h = registry.histogram("latency");
  for (int i = 0; i < 99; ++i) h.record(1.0);
  h.record(4.0);
  EXPECT_EQ(registry.snapshot().json(), registry.json());

  MetricsRegistry empty;
  EXPECT_TRUE(empty.snapshot().empty());
  EXPECT_EQ(empty.snapshot().json(), empty.json());
}

TEST(MetricsSnapshotTest, SnapshotCarriesExactAggregates) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("latency");
  h.record(0.25);
  h.record(1.0);
  h.record(1024.0);
  const MetricsSnapshot snapshot = registry.snapshot();
  const HistogramSnapshot& latency = snapshot.histograms.at("latency");
  EXPECT_EQ(latency.count, 3u);
  EXPECT_EQ(latency.sum, 0.25 + 1.0 + 1024.0);
  EXPECT_EQ(latency.min, 0.25);
  EXPECT_EQ(latency.max, 1024.0);
  ASSERT_EQ(latency.buckets.size(), Histogram::kBucketCount);
  EXPECT_EQ(latency.buckets[Histogram::bucket_of(1.0)], 1u);
  // Quantile parity with the live histogram at every decile.
  for (int q = 0; q <= 10; ++q)
    EXPECT_EQ(latency.quantile(q / 10.0), h.quantile(q / 10.0)) << q;
}

TEST(MetricsSnapshotTest, HistogramMergeIsLossless) {
  // Merging two shards' snapshots must equal one histogram that saw both
  // shards' recordings — count, sum, min/max, buckets and quantiles.
  Histogram both;
  MetricsRegistry shard_a, shard_b;
  for (const double value : {0.25, 1.0, 1.0}) {
    shard_a.histogram("h").record(value);
    both.record(value);
  }
  for (const double value : {16.0, 1024.0}) {
    shard_b.histogram("h").record(value);
    both.record(value);
  }
  HistogramSnapshot merged = shard_a.snapshot().histograms.at("h");
  merged.merge(shard_b.snapshot().histograms.at("h"));
  EXPECT_EQ(merged.count, both.count());
  EXPECT_EQ(merged.sum, both.sum());
  EXPECT_EQ(merged.min, both.min());
  EXPECT_EQ(merged.max, both.max());
  for (const double q : {0.0, 0.2, 0.5, 0.8, 1.0})
    EXPECT_EQ(merged.quantile(q), both.quantile(q)) << q;

  // Merging an empty snapshot changes nothing — in particular min/max must
  // not be dragged to the empty side's zeros.
  const HistogramSnapshot before = merged;
  merged.merge(HistogramSnapshot{});
  EXPECT_EQ(merged.count, before.count);
  EXPECT_EQ(merged.min, before.min);
  EXPECT_EQ(merged.max, before.max);

  // And merging INTO an empty snapshot adopts the other side wholesale.
  HistogramSnapshot fresh;
  fresh.merge(before);
  EXPECT_EQ(fresh.count, before.count);
  EXPECT_EQ(fresh.min, before.min);
  EXPECT_EQ(fresh.quantile(0.5), before.quantile(0.5));
}

TEST(MetricsSnapshotTest, RegistryMergeSumsCountersAndUnionsNames) {
  MetricsRegistry shard_a, shard_b;
  shard_a.counter("campaign.jobs").add(3);
  shard_a.counter("only_a").add(1);
  shard_a.histogram("shared.h").record(1.0);
  shard_b.counter("campaign.jobs").add(5);
  shard_b.counter("only_b").add(2);
  shard_b.histogram("shared.h").record(4.0);
  shard_b.histogram("only_b.h").record(16.0);

  MetricsSnapshot merged = shard_a.snapshot();
  merged.merge(shard_b.snapshot());
  EXPECT_EQ(merged.counters.at("campaign.jobs"), 8u);
  EXPECT_EQ(merged.counters.at("only_a"), 1u);
  EXPECT_EQ(merged.counters.at("only_b"), 2u);
  EXPECT_EQ(merged.histograms.at("shared.h").count, 2u);
  EXPECT_EQ(merged.histograms.at("shared.h").min, 1.0);
  EXPECT_EQ(merged.histograms.at("shared.h").max, 4.0);
  EXPECT_EQ(merged.histograms.at("only_b.h").count, 1u);

  // The merged rollup still renders valid, parseable JSON.
  const testjson::Value root = testjson::parse(merged.json());
  EXPECT_EQ(root.member("counters").member("campaign.jobs").number_value(),
            8.0);
  EXPECT_EQ(
      root.member("histograms").member("shared.h").member("count")
          .number_value(),
      2.0);
}

TEST(MetricsHelpersTest, NoOpWithoutInstalledRegistry) {
  RegistryGuard guard;
  install_metrics_registry(nullptr);
  EXPECT_FALSE(metrics_enabled());
  add_counter("ignored", 1);          // must not crash
  record_histogram("ignored", 1.0);   // must not crash
}

TEST(MetricsHelpersTest, RouteToInstalledRegistry) {
  RegistryGuard guard;
  MetricsRegistry registry;
  install_metrics_registry(&registry);
  EXPECT_TRUE(metrics_enabled());
  add_counter("routed", 2);
  record_histogram("routed.h", 1.0);
  install_metrics_registry(nullptr);
  add_counter("routed", 100);  // after uninstall: dropped
  EXPECT_EQ(registry.counter("routed").value(), 2u);
  EXPECT_EQ(registry.histogram("routed.h").count(), 1u);
}

}  // namespace
}  // namespace essns::obs
