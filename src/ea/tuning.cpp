#include "ea/tuning.hpp"

#include <algorithm>
#include <limits>
#include <memory>

#include "common/error.hpp"
#include "common/statistics.hpp"

namespace essns::ea {

StagnationMonitor::StagnationMonitor(int window, double epsilon)
    : window_(window), epsilon_(epsilon),
      last_best_(-std::numeric_limits<double>::infinity()) {
  ESSNS_REQUIRE(window >= 1, "stagnation window >= 1");
  ESSNS_REQUIRE(epsilon >= 0.0, "stagnation epsilon >= 0");
}

bool StagnationMonitor::update(double best_fitness) {
  if (best_fitness > last_best_ + epsilon_) {
    last_best_ = best_fitness;
    stalled_ = 0;
    return false;
  }
  last_best_ = std::max(last_best_, best_fitness);
  return ++stalled_ >= window_;
}

void StagnationMonitor::reset() {
  stalled_ = 0;
  last_best_ = -std::numeric_limits<double>::infinity();
}

IqrMonitor::IqrMonitor(double threshold) : threshold_(threshold) {
  ESSNS_REQUIRE(threshold >= 0.0, "IQR threshold >= 0");
}

bool IqrMonitor::collapsed(const Population& pop) const {
  if (pop.size() < 4) return false;
  std::vector<double> fitness;
  fitness.reserve(pop.size());
  for (const Individual& ind : pop)
    if (ind.evaluated()) fitness.push_back(ind.fitness);
  if (fitness.size() < 4) return false;
  last_iqr_ = iqr(fitness);
  return last_iqr_ < threshold_;
}

void restart_population(Population& pop, std::size_t keep, Rng& rng) {
  ESSNS_REQUIRE(keep <= pop.size(), "cannot keep more than the population");
  if (pop.empty()) return;
  std::sort(pop.begin(), pop.end(), [](const auto& a, const auto& b) {
    return a.fitness > b.fitness;
  });
  for (std::size_t i = keep; i < pop.size(); ++i) {
    for (double& g : pop[i].genome) g = rng.uniform();
    pop[i].fitness = std::numeric_limits<double>::quiet_NaN();
    pop[i].novelty = 0.0;
  }
}

TuningHook make_essim_de_tuning(int stagnation_window, double epsilon,
                                double iqr_threshold, std::size_t keep,
                                Rng& rng) {
  // Monitors live as shared state inside the hook closure.
  auto stagnation =
      std::make_shared<StagnationMonitor>(stagnation_window, epsilon);
  auto iqr_monitor = std::make_shared<IqrMonitor>(iqr_threshold);
  Rng* rng_ptr = &rng;
  return [stagnation, iqr_monitor, keep, rng_ptr](int, Population& pop) {
    const bool stalled = stagnation->update(max_fitness(pop));
    const bool collapsed = iqr_monitor->collapsed(pop);
    if (!stalled && !collapsed) return false;
    restart_population(pop, keep, *rng_ptr);
    stagnation->reset();
    return true;
  };
}

}  // namespace essns::ea
