// Small descriptive-statistics helpers shared by the metrics library and the
// tuning operators (the ESSIM-DE IQR metric is built on these).
#pragma once

#include <algorithm>
#include <cmath>
#include <span>
#include <vector>

#include "common/error.hpp"

namespace essns {

inline double mean(std::span<const double> xs) {
  ESSNS_REQUIRE(!xs.empty(), "mean of empty sample");
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

inline double variance(std::span<const double> xs) {
  ESSNS_REQUIRE(xs.size() >= 2, "variance needs at least two samples");
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size() - 1);
}

inline double stddev(std::span<const double> xs) {
  return std::sqrt(variance(xs));
}

/// Linear-interpolated quantile (type-7, as in R/numpy). q in [0, 1].
inline double quantile(std::vector<double> xs, double q) {
  ESSNS_REQUIRE(!xs.empty(), "quantile of empty sample");
  ESSNS_REQUIRE(q >= 0.0 && q <= 1.0, "quantile q must be in [0,1]");
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] + frac * (xs[hi] - xs[lo]);
}

inline double median(std::vector<double> xs) { return quantile(std::move(xs), 0.5); }

/// Interquartile range Q3 - Q1; the dispersion statistic used by the
/// ESSIM-DE dynamic tuning metric (Caymes-Scutari et al., CACIC 2019).
inline double iqr(const std::vector<double>& xs) {
  return quantile(xs, 0.75) - quantile(xs, 0.25);
}

}  // namespace essns
