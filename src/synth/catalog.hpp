// ScenarioCatalog: expand a compact CatalogSpec into a fleet of distinct
// Workloads — the workload side of the campaign service (src/service/).
//
// The paper evaluates three named burn cases; a production prediction
// service faces many simultaneous fires over diverse terrain, weather and
// outbreak geometry. A CatalogSpec is the cross product
//   terrain family x map size x weather regime x ignition pattern x seeds
// and generate_catalog() enumerates it into named workloads, each carrying
// its own derived seed so seed replicates of the same cell are distinct
// fires. Generation is fully deterministic: the same spec always yields the
// same workload list, bit for bit, which is what makes campaign runs
// reproducible across job-concurrency levels.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "synth/workloads.hpp"

namespace essns::synth {

enum class TerrainFamily { kPlains, kHills, kRugged };
enum class WeatherRegime { kSteady, kWindShift, kDiurnal };
enum class IgnitionPattern { kCenter, kOffset, kEdge, kCorner };

const char* to_string(TerrainFamily family);
const char* to_string(WeatherRegime regime);
const char* to_string(IgnitionPattern pattern);

/// Inverse of to_string(); empty optional on an unknown name. The serve
/// request parser and the catalog spec parser share these, so a fire
/// described over the wire names exactly the same enumerators a catalog
/// file would.
std::optional<TerrainFamily> parse_terrain_family(const std::string& name);
std::optional<WeatherRegime> parse_weather_regime(const std::string& name);
std::optional<IgnitionPattern> parse_ignition_pattern(const std::string& name);

/// One catalog cell, addressed directly: everything that determines a
/// single fire. make_workload(request) is the pure function both
/// generate_catalog() (which derives `seed` by chaining the spec's
/// base_seed through the cell's dimension indices) and the serve frontend
/// (which takes the seed straight off the request) evaluate — so a fire
/// predicted over the wire is bit-identical to the same cell of a catalog
/// campaign.
struct WorkloadRequest {
  TerrainFamily terrain = TerrainFamily::kPlains;
  int size = 32;                 ///< grid edge, >= 16
  WeatherRegime weather = WeatherRegime::kSteady;
  IgnitionPattern ignition = IgnitionPattern::kCenter;
  std::uint64_t seed = 2022;     ///< the workload seed (terrain + truth)
  int steps = 4;                 ///< ground-truth instants t_1..t_steps (>= 2)
  double step_minutes = 45.0;
  double observation_noise = 0.02;
};

/// Build the workload for one cell. Deterministic in `request`; the name is
/// "<terrain><size>-<weather>-<ignition>" (generate_catalog appends its
/// replicate suffix). Throws InvalidArgument on out-of-range fields.
Workload make_workload(const WorkloadRequest& request);

/// Compact description of a workload family; see generate_catalog().
struct CatalogSpec {
  std::vector<TerrainFamily> terrains{TerrainFamily::kPlains,
                                      TerrainFamily::kHills};
  std::vector<int> sizes{32};  ///< grid edges, each >= 16
  std::vector<WeatherRegime> weather{WeatherRegime::kSteady,
                                     WeatherRegime::kWindShift};
  std::vector<IgnitionPattern> ignitions{IgnitionPattern::kCenter,
                                         IgnitionPattern::kOffset};
  int seeds_per_case = 1;        ///< seed replicates per combination
  std::uint64_t base_seed = 2022;
  int steps = 4;                 ///< ground-truth instants t_1..t_steps (>= 2)
  double step_minutes = 45.0;
  double observation_noise = 0.02;
  std::size_t max_workloads = 0;  ///< truncate the enumeration; 0 = no cap
};

/// Workloads generate_catalog(spec) will produce (before max_workloads).
std::size_t catalog_size(const CatalogSpec& spec);

/// Enumerate the cross product into named workloads
/// ("<terrain><size>-<weather>-<ignition>-s<rep>"), terrain-major order.
/// Deterministic in `spec`; every workload carries a distinct derived seed.
std::vector<Workload> generate_catalog(const CatalogSpec& spec);

/// The outbreak cell a pattern maps to on a size x size grid.
CellIndex ignition_cell(IgnitionPattern pattern, int size);

/// Round-robin shard partition of an expanded catalog: shard k of N owns
/// global workload indices k, k + N, k + 2N, ... — a pure function of
/// (workload_count, shard_index, shard_count), so a shard worker and the
/// launching parent compute identical slices from the catalog spec alone,
/// with nothing to communicate and no partition file to drift. Round-robin
/// (not contiguous blocks) keeps the per-shard mix of sizes/terrains even
/// when the catalog enumerates small maps before large ones.
/// Throws InvalidArgument unless shard_index < shard_count.
std::vector<std::size_t> shard_slice_indices(std::size_t workload_count,
                                             std::size_t shard_index,
                                             std::size_t shard_count);

/// Parse "key=value" lines (comma-separated lists for the set-valued keys):
///   terrains   plains,hills,rugged        sizes     32,48
///   weather    steady,wind_shift,diurnal  ignitions center,offset,edge,corner
///   seeds      replicates per cell        base_seed uint64
///   steps / step_minutes / noise / limit
/// Blank lines and '#' comments are ignored; unknown keys throw
/// InvalidArgument naming the offending line.
CatalogSpec parse_catalog_spec(std::istream& in);
CatalogSpec parse_catalog_spec(const std::string& text);

}  // namespace essns::synth
