#include "common/ascii_grid.hpp"

#include <cctype>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/parse.hpp"

namespace essns {

void write_ascii_grid(std::ostream& out, const Grid<double>& grid,
                      double cell_size, double nodata) {
  out << "ncols " << grid.cols() << '\n'
      << "nrows " << grid.rows() << '\n'
      << "xllcorner 0.0\n"
      << "yllcorner 0.0\n"
      << "cellsize " << cell_size << '\n'
      << "NODATA_value " << nodata << '\n';
  for (int r = 0; r < grid.rows(); ++r) {
    for (int c = 0; c < grid.cols(); ++c) {
      if (c) out << ' ';
      out << grid(r, c);
    }
    out << '\n';
  }
}

void write_ascii_grid(const std::string& path, const Grid<double>& grid,
                      double cell_size, double nodata) {
  std::ofstream out(path);
  if (!out) throw IoError("cannot open for writing: " + path);
  write_ascii_grid(out, grid, cell_size, nodata);
  if (!out) throw IoError("write failed: " + path);
}

Grid<double> read_ascii_grid(std::istream& in) {
  // Strict parsing discipline (common/parse.hpp): every token must be a
  // whole well-formed number — "32.5" for ncols, "0x20", "12abc" or a bare
  // "-" are errors naming the offending token, where the old stream
  // extraction silently truncated or accepted a prefix.
  int ncols = -1, nrows = -1;
  double cellsize = 1.0, nodata = -9999.0, xll = 0.0, yll = 0.0;
  std::string key, token;
  // Header: a fixed set of "key value" lines; order of optional keys is free.
  for (int i = 0; i < 6; ++i) {
    if (!(in >> key)) throw IoError("ascii grid: truncated header");
    std::string lower;
    for (char ch : key) lower += static_cast<char>(std::tolower(ch));
    if (!(in >> token))
      throw IoError("ascii grid: missing header value for " + key);
    if (lower == "ncols" || lower == "nrows") {
      // Dimensions must be whole integers; "32.5" is a malformed grid, not
      // a 32-column one.
      const auto value = parse_int(token);
      if (!value)
        throw IoError("ascii grid: bad integer header value for " + key +
                      ": '" + token + "'");
      (lower == "ncols" ? ncols : nrows) = *value;
    } else {
      const auto value = parse_double(token);
      if (!value)
        throw IoError("ascii grid: bad header value for " + key + ": '" +
                      token + "'");
      if (lower == "cellsize") cellsize = *value;
      else if (lower == "nodata_value") nodata = *value;
      else if (lower == "xllcorner") xll = *value;
      else if (lower == "yllcorner") yll = *value;
      else throw IoError("ascii grid: unknown header key " + key);
    }
  }
  (void)cellsize; (void)nodata; (void)xll; (void)yll;
  if (ncols <= 0 || nrows <= 0)
    throw IoError("ascii grid: missing or invalid ncols/nrows");

  Grid<double> grid(nrows, ncols);
  for (int r = 0; r < nrows; ++r) {
    for (int c = 0; c < ncols; ++c) {
      if (!(in >> token)) throw IoError("ascii grid: truncated data section");
      const auto value = parse_double(token);
      if (!value)
        throw IoError("ascii grid: bad data value at row " +
                      std::to_string(r) + ", col " + std::to_string(c) +
                      ": '" + token + "'");
      grid(r, c) = *value;
    }
  }
  if (in >> token)
    throw IoError("ascii grid: trailing data after " +
                  std::to_string(static_cast<long long>(nrows) * ncols) +
                  " values: '" + token + "'");
  return grid;
}

Grid<double> read_ascii_grid(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open for reading: " + path);
  return read_ascii_grid(in);
}

}  // namespace essns
