// Sharded campaigns: fan one catalog out over N worker PROCESSES and merge
// their streams back into a single CampaignResult that is byte-identical
// (canonical reports, cache off/step) to running the whole catalog in one
// process at the same seeds.
//
// Topology: run_sharded_campaign() fork/execs N copies of the current
// executable (/proc/self/exe) in a hidden `--shard-worker` mode. Each worker
// receives a WorkerConfig frame on stdin, re-expands the catalog spec text
// deterministically, takes the round-robin slice
// synth::shard_slice_indices(total, k, N), and runs it through the ordinary
// in-process CampaignScheduler with job_index_offset = k, stride = N — so
// every job computes the same global index, and therefore the same seed and
// the same bits, as the single-process run. Finished jobs stream back over
// the worker's stdout pipe as wire frames (src/shard/wire.hpp) in completion
// order; the parent poll()s all pipes, decodes incrementally, and slots
// records into submission order.
//
// Why processes and not more threads: job pipelines already saturate a
// process with two-level thread parallelism; shards add memory isolation (a
// crashing job takes down one slice, not the campaign — see the killed-shard
// handling below) and are the rehearsal for the ROADMAP's multi-host
// distribution, whose transport is exactly this wire format.
//
// Crash containment: a worker that dies mid-stream (nonzero exit, signal,
// torn frame) costs only its unreported jobs — every CRC-complete frame
// already received is kept, the campaign completes, and the missing jobs are
// synthesized as kFailed records with their correct deterministic seeds
// (service::campaign_job_seed) and an error naming the dead shard.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "service/campaign.hpp"
#include "shard/wire.hpp"

namespace essns::shard {

/// How one worker process fared, for the per-shard utilization report.
struct ShardReport {
  std::uint32_t shard_index = 0;
  std::size_t jobs_assigned = 0;
  std::size_t jobs_received = 0;  ///< complete kJobRecord frames decoded
  /// From the worker's ShardSummary (0 until summary_received).
  double wall_seconds = 0.0;
  double busy_seconds = 0.0;
  std::uint32_t job_concurrency = 1;  ///< concurrency the slice ran at
  bool summary_received = false;
  /// Worker exited 0 after a clean kEnd with every assigned job reported.
  bool clean = false;
  /// Raw exit status description ("exit 0", "exit 42", "signal 9") plus any
  /// wire/decode error; empty only for clean shards.
  std::string error;

  /// busy / (wall * job_concurrency): how full this worker's job slots were.
  double utilization() const {
    const double capacity = wall_seconds * static_cast<double>(job_concurrency);
    return capacity <= 0.0 ? 0.0 : busy_seconds / capacity;
  }
};

struct ShardedCampaignOptions {
  /// Worker processes to launch (>= 1; 1 still forks a single worker, so
  /// the process topology is exercised even in the baseline arm).
  unsigned shards = 2;
  /// Campaign configuration, in the same vocabulary as a single-process
  /// run: job_concurrency is the CAMPAIGN-WIDE concurrency target (each
  /// worker gets ceil(job_concurrency / shards) slots), total_workers the
  /// campaign-wide simulation budget used to derive the forced per-job
  /// worker count, and on_job_done fires in the PARENT as records arrive
  /// (completion order across shards is nondeterministic; the merged result
  /// is not). trace_out fans out to <path>.shard<k> files written by the
  /// workers; metrics_out becomes ONE merged rollup written by the parent.
  service::CampaignConfig config;
  /// Catalog spec text (synth::parse_catalog_spec); "" = default catalog.
  /// Workers re-expand this text rather than receiving workloads, so the
  /// partition is a pure function of (catalog, shards).
  std::string catalog_text;
  /// Executable to re-invoke in --shard-worker mode; "" = /proc/self/exe.
  std::string exe_path;
  /// Aggregate per-shard metrics scrapes into ShardedCampaignResult::metrics
  /// even when config.metrics_out is empty (benches splice it into JSON).
  bool collect_metrics = false;

  /// Test hooks for the killed-shard arms: shard `debug_crash_shard` calls
  /// _exit(kCrashExitCode) after streaming `debug_crash_after_jobs` job
  /// frames. -1 disables.
  int debug_crash_shard = -1;
  int debug_crash_after_jobs = 0;
};

struct ShardedCampaignResult {
  /// Merged campaign in submission order: streamed records byte-equal to
  /// the single-process run's, synthesized kFailed records for jobs lost to
  /// a dead shard. job_concurrency / workers_per_job are the campaign-wide
  /// values, so canonical reports match the unsharded run's bytes.
  service::CampaignResult campaign;
  std::vector<ShardReport> shards;  ///< indexed by shard
  /// Merged metrics rollup (sum of the per-shard scrapes; empty unless
  /// metrics were requested). Identical in format — and, totals being
  /// exact, in content — to a single-process scrape of the same campaign.
  obs::MetricsSnapshot metrics;

  bool all_shards_clean() const;
};

/// Launch, stream, merge. Throws Error on launcher-level failures (bad
/// options, pipe/fork exhaustion, unparsable catalog); worker-level death is
/// NOT an exception — it is recorded in shards[] and as kFailed jobs.
ShardedCampaignResult run_sharded_campaign(
    const ShardedCampaignOptions& options);

/// Entry point for the hidden --shard-worker mode: read the WorkerConfig
/// frame stream from stdin, run the slice, stream frames to stdout. Returns
/// the process exit code (0 on success; diagnostics go to stderr, which the
/// worker inherits from the parent). Host executables (essns_cli,
/// bench_shard, the shard test binary) call this before any other argv
/// handling when argv[1] == "--shard-worker".
int shard_worker_main();

}  // namespace essns::shard
