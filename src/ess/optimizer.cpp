#include "ess/optimizer.hpp"

#include <algorithm>

#include "ea/tuning.hpp"

namespace essns::ess {

GaOptimizer::GaOptimizer(ea::GaConfig config) : config_(config) {}

OptimizationOutcome GaOptimizer::optimize(std::size_t dim,
                                          const ea::BatchEvaluator& evaluate,
                                          const ea::StopCondition& stop,
                                          Rng& rng) {
  ea::GaResult result = ea::run_ga(config_, dim, evaluate, stop, rng);
  OptimizationOutcome out;
  out.solutions = std::move(result.population);
  out.best = std::move(result.best);
  out.generations = result.generations;
  out.evaluations = result.evaluations;
  return out;
}

DeOptimizer::DeOptimizer() : DeOptimizer(Options{}) {}

DeOptimizer::DeOptimizer(Options options) : options_(options) {}

OptimizationOutcome DeOptimizer::optimize(std::size_t dim,
                                          const ea::BatchEvaluator& evaluate,
                                          const ea::StopCondition& stop,
                                          Rng& rng) {
  ea::TuningHook tuning;
  if (options_.with_tuning) {
    tuning = ea::make_essim_de_tuning(
        options_.stagnation_window, options_.stagnation_epsilon,
        options_.iqr_threshold, options_.restart_keep, rng);
  }
  ea::DeResult result = ea::run_de(options_.de, dim, evaluate, stop, rng,
                                   nullptr, tuning);

  OptimizationOutcome out;
  out.best = result.best;
  out.generations = result.generations;
  out.evaluations = result.evaluations;

  // ESSIM-DE result selection: the top (1 - diversity_fraction) share of the
  // population by fitness, plus a uniformly drawn share taken regardless of
  // fitness — "a part of the results are incorporated in the prediction
  // process regardless of their fitness" (§II-B).
  ea::Population pop = std::move(result.population);
  std::sort(pop.begin(), pop.end(), [](const auto& a, const auto& b) {
    return a.fitness > b.fitness;
  });
  const std::size_t n = pop.size();
  const auto random_share =
      static_cast<std::size_t>(options_.diversity_fraction *
                               static_cast<double>(n));
  const std::size_t elite_share = n - random_share;
  out.solutions.assign(pop.begin(),
                       pop.begin() + static_cast<std::ptrdiff_t>(elite_share));
  // Remaining slots: uniform draws without replacement from the non-elite
  // tail, removing each drawn element by swap-and-pop (O(1) per draw).
  std::vector<ea::Individual> tail(
      pop.begin() + static_cast<std::ptrdiff_t>(elite_share), pop.end());
  while (!tail.empty() && out.solutions.size() < n) {
    const auto pick = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(tail.size()) - 1));
    out.solutions.push_back(std::move(tail[pick]));
    if (pick + 1 != tail.size()) tail[pick] = std::move(tail.back());
    tail.pop_back();
  }
  return out;
}

NsGaOptimizer::NsGaOptimizer(core::NsGaConfig config,
                             core::BehaviorDistance dist)
    : config_(config), dist_(std::move(dist)) {}

OptimizationOutcome NsGaOptimizer::optimize(std::size_t dim,
                                            const ea::BatchEvaluator& evaluate,
                                            const ea::StopCondition& stop,
                                            Rng& rng) {
  core::NsGaResult result =
      core::run_ns_ga(config_, dim, evaluate, stop, rng, dist_);
  OptimizationOutcome out;
  out.solutions = std::move(result.best_set);
  if (!out.solutions.empty()) out.best = out.solutions.front();
  out.generations = result.generations;
  out.evaluations = result.evaluations;
  return out;
}

}  // namespace essns::ess
