#include "service/report.hpp"

#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace essns::service {
namespace {

// Round-trip formatting so JSONL diffs double as bit-determinism checks.
std::string num(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  return buffer;
}

std::ofstream open_or_throw(const std::string& path) {
  std::ofstream out(path);
  if (!out) throw IoError("cannot write " + path);
  return out;
}

}  // namespace

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_campaign_jsonl(const CampaignResult& result, std::ostream& out,
                          const ReportOptions& options) {
  // Canonical form: every wall-clock field renders as 0 so the bytes are a
  // pure function of the seeds.
  const auto secs = [&options](double value) {
    return num(options.zero_timings ? 0.0 : value);
  };
  for (const auto& job : result.jobs) {
    out << "{\"job\":" << job.index
        << ",\"workload\":\"" << json_escape(job.workload) << "\""
        << ",\"status\":\"" << to_string(job.status) << "\""
        << ",\"seed\":" << job.seed
        << ",\"rows\":" << job.rows << ",\"cols\":" << job.cols
        << ",\"workers\":" << job.workers
        << ",\"elapsed_seconds\":" << secs(job.elapsed_seconds);
    if (job.status == JobStatus::kSucceeded) {
      out << ",\"optimizer\":\"" << json_escape(job.result.optimizer_name)
          << "\""
          << ",\"mean_quality\":" << num(job.result.mean_quality())
          << ",\"evaluations\":" << job.result.total_evaluations()
          << ",\"cache_hits\":" << job.result.total_cache_hits()
          << ",\"cache_misses\":" << job.result.total_cache_misses()
          << ",\"cache_hit_rate\":" << num(job.result.cache_hit_rate())
          << ",\"cache_evictions\":" << job.result.total_cache_evictions()
          << ",\"cache_insertions_rejected\":"
          << job.result.total_cache_insertions_rejected()
          << ",\"cache_peak_bytes\":" << job.result.max_cache_bytes()
          << ",\"batch_dedup_hits\":" << job.result.total_batch_dedup_hits()
          << ",\"steps\":[";
      for (std::size_t s = 0; s < job.result.steps.size(); ++s) {
        const auto& step = job.result.steps[s];
        out << (s == 0 ? "" : ",") << "{\"step\":" << step.step
            << ",\"kign\":" << num(step.kign)
            << ",\"calibration_fitness\":" << num(step.calibration_fitness)
            << ",\"best_os_fitness\":" << num(step.best_os_fitness)
            << ",\"quality\":" << num(step.prediction_quality)
            << ",\"evaluations\":" << step.os_evaluations
            << ",\"generations\":" << step.os_generations
            << ",\"os_seconds\":" << secs(step.os_seconds)
            << ",\"ss_seconds\":" << secs(step.ss_seconds)
            << ",\"cs_seconds\":" << secs(step.cs_seconds)
            << ",\"ps_seconds\":" << secs(step.ps_seconds)
            << ",\"cache_hits\":" << step.cache_hits
            << ",\"cache_misses\":" << step.cache_misses
            << ",\"cache_evictions\":" << step.cache_evictions
            << ",\"cache_insertions_rejected\":"
            << step.cache_insertions_rejected
            << ",\"cache_entries\":" << step.cache_entries
            << ",\"cache_bytes\":" << step.cache_bytes
            << ",\"batch_dedup_hits\":" << step.batch_dedup_hits
            << ",\"elapsed_seconds\":" << secs(step.elapsed_seconds) << "}";
      }
      out << "]";
    } else {
      out << ",\"error\":\"" << json_escape(job.error) << "\"";
    }
    out << "}\n";
  }
}

void write_campaign_jsonl(const CampaignResult& result,
                          const std::string& path,
                          const ReportOptions& options) {
  auto out = open_or_throw(path);
  write_campaign_jsonl(result, out, options);
}

void write_campaign_csv(const CampaignResult& result, std::ostream& out,
                        const ReportOptions& options) {
  const auto secs = [&options](double value) {
    return num(options.zero_timings ? 0.0 : value);
  };
  out << "job,workload,status,step,kign,calibration_fitness,quality,"
         "os_seconds,ss_seconds,cs_seconds,ps_seconds,elapsed_seconds,error\n";
  for (const auto& job : result.jobs) {
    if (job.status != JobStatus::kSucceeded) {
      // CSV has no place for quotes-in-quotes subtleties; strip commas.
      std::string error = job.error;
      for (auto& c : error)
        if (c == ',' || c == '\n') c = ';';
      out << job.index << ',' << job.workload << ",failed,,,,,,,,,"
          << secs(job.elapsed_seconds) << ',' << error << '\n';
      continue;
    }
    for (const auto& step : job.result.steps) {
      out << job.index << ',' << job.workload << ",succeeded," << step.step
          << ',' << num(step.kign) << ',' << num(step.calibration_fitness)
          << ',' << num(step.prediction_quality) << ',' << secs(step.os_seconds)
          << ',' << secs(step.ss_seconds) << ',' << secs(step.cs_seconds) << ','
          << secs(step.ps_seconds) << ',' << secs(step.elapsed_seconds)
          << ",\n";
    }
  }
}

void write_campaign_csv(const CampaignResult& result, const std::string& path,
                        const ReportOptions& options) {
  auto out = open_or_throw(path);
  write_campaign_csv(result, out, options);
}

std::string campaign_summary_json(const CampaignResult& result,
                                  const ReportOptions& options) {
  const auto secs = [&options](double value) {
    return num(options.zero_timings ? 0.0 : value);
  };
  std::ostringstream out;
  out << "{\"jobs\":" << result.jobs.size()
      << ",\"succeeded\":" << result.succeeded()
      << ",\"failed\":" << result.failed()
      << ",\"job_concurrency\":" << result.job_concurrency
      << ",\"workers_per_job\":" << result.workers_per_job
      << ",\"wall_seconds\":" << secs(result.wall_seconds)
      << ",\"jobs_per_second\":" << secs(result.jobs_per_second())
      << ",\"succeeded_per_second\":" << secs(result.succeeded_per_second())
      << ",\"mean_quality\":" << num(result.mean_quality())
      << ",\"cache_policy\":\"" << cache::to_string(result.cache_policy)
      << "\""
      << ",\"cache_hits\":" << result.cache_hits()
      << ",\"cache_misses\":" << result.cache_misses()
      << ",\"cache_hit_rate\":" << num(result.cache_hit_rate())
      << ",\"cache_evictions\":" << result.cache_evictions()
      << ",\"cache_insertions_rejected\":"
      << result.cache_insertions_rejected()
      << ",\"batch_dedup_hits\":" << result.batch_dedup_hits()
      << ",\"cache_bytes\":" << result.cache_bytes();
  if (result.cache_policy == cache::CachePolicy::kShared) {
    // Cache-global view of the campaign-wide shared cache: hits/misses here
    // include cross-job traffic, and entries/bytes are the end-of-campaign
    // footprint against the configured budget.
    const cache::CacheStats& s = result.shared_cache_stats;
    out << ",\"cache_mem_bytes\":" << result.cache_mem_bytes
        << ",\"shared_cache\":{\"hits\":" << s.hits
        << ",\"misses\":" << s.misses
        << ",\"hit_rate\":" << num(s.hit_rate())
        << ",\"evictions\":" << s.evictions
        << ",\"insertions_rejected\":" << s.insertions_rejected
        << ",\"entries\":" << s.entries << ",\"bytes\":" << s.bytes << "}";
  }
  out << "}";
  return out.str();
}

namespace {

std::string kib(std::size_t bytes) {
  return std::to_string((bytes + 1023) / 1024);
}

}  // namespace

TextTable campaign_summary_table(const CampaignResult& result,
                                 const std::string& title) {
  TextTable table(title + " (" + std::to_string(result.jobs.size()) +
                  " jobs, " + std::to_string(result.job_concurrency) +
                  " concurrent, " + std::to_string(result.workers_per_job) +
                  " workers/job, cache " +
                  cache::to_string(result.cache_policy) + ")");
  table.set_header({"job", "workload", "status", "steps", "quality", "time[s]",
                    "jobs/s", "ok/s", "hit%", "dedup", "evict", "cache[KiB]"});
  for (const auto& job : result.jobs) {
    const bool ok = job.status == JobStatus::kSucceeded;
    table.add_row({std::to_string(job.index), job.workload,
                   to_string(job.status),
                   ok ? std::to_string(job.result.steps.size()) : "-",
                   ok ? TextTable::num(job.result.mean_quality()) : "-",
                   TextTable::num(job.elapsed_seconds, 2), "-", "-",
                   ok ? TextTable::num(100.0 * job.result.cache_hit_rate(), 1)
                      : "-",
                   ok ? std::to_string(job.result.total_batch_dedup_hits())
                      : "-",
                   ok ? std::to_string(job.result.total_cache_evictions())
                      : "-",
                   ok ? kib(job.result.max_cache_bytes()) : "-"});
  }
  // Campaign-wide rollup so catalog runs show the cross-job sharing benefit
  // (under kShared `cache[KiB]` is the shared cache's live footprint).
  // jobs/s counts every disposed job; ok/s only the ones that delivered a
  // prediction — the two diverge when shards crash or pipelines throw.
  table.add_row({"all", "campaign", std::to_string(result.succeeded()) + " ok",
                 "-", TextTable::num(result.mean_quality()),
                 TextTable::num(result.wall_seconds, 2),
                 TextTable::num(result.jobs_per_second()),
                 TextTable::num(result.succeeded_per_second()),
                 TextTable::num(100.0 * result.cache_hit_rate(), 1),
                 std::to_string(result.batch_dedup_hits()),
                 std::to_string(result.cache_evictions()),
                 kib(result.cache_bytes())});
  return table;
}

}  // namespace essns::service
